package experiments

import (
	"fmt"

	"safecross/internal/dataset"
	"safecross/internal/fewshot"
	"safecross/internal/sim"
	"safecross/internal/video"
)

// Future-work extensions from the paper's Sec. VI-B, implemented and
// measured: adaptation to additional extreme scenes (fog, night) and
// the mirrored deployment for left-driving countries.

// SceneAdaptationResult reports day-model performance on a new scene
// before and after few-shot adaptation.
type SceneAdaptationResult struct {
	Scene sim.Weather
	// Before and After are Top-1 accuracies of the daytime model and
	// the adapted model on held-out clips of the new scene.
	Before, After float64
	// SupportClips is the adaptation set size.
	SupportClips int
}

// AdaptToScene trains the daytime model, then adapts it to an
// arbitrary scene (including the extended fog/night conditions) from
// a small support set, reporting before/after accuracy.
func AdaptToScene(cfg Config, scene sim.Weather, supportClips int) (*SceneAdaptationResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if supportClips <= 0 {
		return nil, fmt.Errorf("experiments: support size %d must be positive", supportClips)
	}
	scenes, err := cfg.generateScenes()
	if err != nil {
		return nil, err
	}
	builder := video.SlowFastBuilder(cfg.slowFastConfig(cfg.Seed + 100))
	day, err := builder()
	if err != nil {
		return nil, err
	}
	cfg.logf("scene adaptation: training daytime model")
	if _, err := video.Train(day, scenes[sim.Day].Train, video.TrainConfig{
		Epochs: cfg.Epochs, LR: 0.008, Seed: cfg.Seed, Log: cfg.Log,
	}); err != nil {
		return nil, err
	}

	support, err := sceneClipSet(cfg, scene, supportClips, cfg.Seed+7_000_000)
	if err != nil {
		return nil, err
	}
	test, err := sceneClipSet(cfg, scene, evalSetSize, cfg.Seed+8_000_000)
	if err != nil {
		return nil, err
	}

	cmBefore, err := video.Evaluate(day, test)
	if err != nil {
		return nil, err
	}
	adapted, err := fewshot.FineTune(builder, day, support, video.TrainConfig{
		Epochs: cfg.Epochs, LR: 0.008, Seed: cfg.Seed + 1, Log: cfg.Log,
	})
	if err != nil {
		return nil, err
	}
	cmAfter, err := video.Evaluate(adapted, test)
	if err != nil {
		return nil, err
	}
	return &SceneAdaptationResult{
		Scene:        scene,
		Before:       cmBefore.Top1(),
		After:        cmAfter.Top1(),
		SupportClips: len(support),
	}, nil
}

// sceneClipSet generates n clips of a scene from a dedicated seed
// stream.
func sceneClipSet(cfg Config, scene sim.Weather, n int, seed int64) ([]*dataset.Clip, error) {
	spec := dataset.Spec{Weather: scene, Segments: n, Seed: seed}
	return cfg.generateSceneClips(spec)
}

// MirrorResult reports the left-driving-country deployment check.
type MirrorResult struct {
	// Top1 is the accuracy of a model trained on mirrored clips and
	// evaluated on mirrored held-out clips.
	Top1 float64
	// CrossTop1 is the mirrored-trained model evaluated on unmirrored
	// clips — expected to be much worse, confirming the geometry is
	// truly directional and "the difference is just the training
	// data".
	CrossTop1 float64
}

// MirrorDeployment trains on horizontally mirrored daytime clips (the
// right-turn blind-zone problem of left-driving countries) and
// verifies the framework works unchanged.
func MirrorDeployment(cfg Config) (*MirrorResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	scenes, err := cfg.generateScenes()
	if err != nil {
		return nil, err
	}
	day := scenes[sim.Day]
	trainM := dataset.MirrorClips(day.Train)
	testM := dataset.MirrorClips(day.Test)

	m, err := video.NewSlowFast(cfg.slowFastConfig(cfg.Seed + 500))
	if err != nil {
		return nil, err
	}
	cfg.logf("mirror deployment: training on %d mirrored clips", len(trainM))
	if _, err := video.Train(m, trainM, video.TrainConfig{
		Epochs: cfg.Epochs, LR: 0.008, Seed: cfg.Seed, Log: cfg.Log,
	}); err != nil {
		return nil, err
	}
	cmMirror, err := video.Evaluate(m, testM)
	if err != nil {
		return nil, err
	}
	cmCross, err := video.Evaluate(m, day.Test)
	if err != nil {
		return nil, err
	}
	return &MirrorResult{Top1: cmMirror.Top1(), CrossTop1: cmCross.Top1()}, nil
}
