package experiments

import (
	"fmt"

	"safecross/internal/dataset"
	"safecross/internal/safecross"
	"safecross/internal/sim"
)

// ThroughputReport combines the paper's Sec. V-D statistic with the
// closed-loop simulation version.
type ThroughputReport struct {
	// Classification is the blind-zone test-set result (the paper's
	// 63-segment statistic).
	Classification *safecross.ThroughputResult
	// Loop is the per-weather closed-loop simulation.
	Loop map[sim.Weather]*safecross.SimThroughputResult
}

// ThroughputSetSizes are the paper's blind-zone test-set class
// counts: 32 danger, 31 safe.
const (
	ThroughputDangerClips = 32
	ThroughputSafeClips   = 31
)

// Throughput evaluates the scene models on the paper's full
// blind-zone test set (32 danger / 31 safe clips — the set is small
// enough to generate at every profile) and runs the closed-loop
// simulation for each weather.
func Throughput(tm *TrainedModels) (*ThroughputReport, error) {
	cfg := tm.Cfg
	nDanger := ThroughputDangerClips
	nSafe := ThroughputSafeClips

	cfg.logf("building blind-zone test set (%d danger / %d safe)", nDanger, nSafe)
	clips, err := blindZoneClips(cfg, nDanger, nSafe)
	if err != nil {
		return nil, err
	}
	// The paper classifies the mixed-weather blind-zone set with
	// SafeCross; we use the matching per-scene models.
	res := &safecross.ThroughputResult{Total: len(clips)}
	correct := 0
	for i, clip := range clips {
		model, ok := tm.Models[clip.Weather]
		if !ok {
			return nil, fmt.Errorf("experiments: no model for %v", clip.Weather)
		}
		pred, err := predict(model, clip)
		if err != nil {
			return nil, fmt.Errorf("experiments: throughput clip %d: %w", i, err)
		}
		switch clip.Label {
		case dataset.ClassDanger:
			res.DangerClips++
			if pred == dataset.ClassDanger {
				res.CorrectDanger++
				correct++
			} else {
				res.UnsafeReleases++
			}
		case dataset.ClassSafe:
			res.SafeClips++
			if pred == dataset.ClassSafe {
				res.CorrectSafe++
				correct++
			}
		}
	}
	res.Accuracy = float64(correct) / float64(res.Total)
	res.ThroughputGain = float64(res.CorrectSafe) / float64(res.Total)

	loop := make(map[sim.Weather]*safecross.SimThroughputResult, 3)
	for _, w := range sim.AllWeathers() {
		r, err := safecross.SimulateThroughput(w, 6000, cfg.Seed+int64(w))
		if err != nil {
			return nil, err
		}
		loop[w] = r
	}
	return &ThroughputReport{Classification: res, Loop: loop}, nil
}

// blindZoneClips builds the mixed-weather blind-zone set at the
// configured clip length.
func blindZoneClips(cfg Config, nDanger, nSafe int) ([]*dataset.Clip, error) {
	weathers := sim.AllWeathers()
	clips := make([]*dataset.Clip, 0, nDanger+nSafe)
	build := func(n int, danger bool, base int64) error {
		for i := 0; i < n; i++ {
			sc := sim.Scenario{
				Weather: weathers[i%len(weathers)],
				Blind:   true,
				Danger:  danger,
				Seed:    cfg.Seed + base + int64(i)*104729 + 555,
				// The paper's statistic set contains visually
				// unambiguous clips (its accuracy is 1.0); match that.
				Margin: 0.3,
			}
			seg, err := sc.GenerateN(cfg.ClipLen)
			if err != nil {
				return err
			}
			clip, err := dataset.FromSegment(seg, cfg.vpConfig())
			if err != nil {
				return err
			}
			clips = append(clips, clip)
		}
		return nil
	}
	if err := build(nDanger, true, 0); err != nil {
		return nil, fmt.Errorf("experiments: blind-zone danger clips: %w", err)
	}
	if err := build(nSafe, false, 1<<32); err != nil {
		return nil, fmt.Errorf("experiments: blind-zone safe clips: %w", err)
	}
	return clips, nil
}
