package flow

import (
	"fmt"

	"safecross/internal/vision"
)

// Pyramidal Lucas–Kanade: plain LK only recovers sub-window motion
// (a few pixels); fast vehicles move further between frames. The
// coarse-to-fine scheme estimates flow on downsampled images first,
// scales the estimate up, and refines it at each finer level — the
// standard fix, provided here as an optional upgrade over the plain
// tracker the Table II comparison uses.

// BuildPyramid returns up to levels halved images, index 0 being the
// original. It stops early once a level would drop below 16 px on a
// side.
func BuildPyramid(im *vision.Image, levels int) ([]*vision.Image, error) {
	if levels <= 0 {
		return nil, fmt.Errorf("flow: pyramid levels %d must be positive", levels)
	}
	pyr := []*vision.Image{im}
	for l := 1; l < levels; l++ {
		prev := pyr[l-1]
		if prev.W < 16 || prev.H < 16 {
			break
		}
		down, err := prev.Downsample(2)
		if err != nil {
			return nil, fmt.Errorf("flow: pyramid level %d: %w", l, err)
		}
		pyr = append(pyr, down)
	}
	return pyr, nil
}

// warp returns an image sampling im at (x+gx, y+gy) with
// nearest-neighbour rounding; out-of-bounds samples are zero. It
// re-centres the second frame around the current motion estimate so
// each pyramid level solves only a small residual.
func warp(im *vision.Image, gx, gy float64) *vision.Image {
	ix, iy := roundNearest(gx), roundNearest(gy)
	if ix == 0 && iy == 0 {
		return im
	}
	out := vision.NewImage(im.W, im.H)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			out.Set(x, y, im.At(x+ix, y+iy))
		}
	}
	return out
}

func roundNearest(v float64) int {
	if v >= 0 {
		return int(v + 0.5)
	}
	return -int(-v + 0.5)
}

// LucasKanadePyramidal tracks points coarse-to-fine across a pyramid
// of the given depth. Each level's estimate seeds the next finer
// level, so displacements several times the window size are
// recoverable. Results are in original-resolution coordinates.
func LucasKanadePyramidal(prev, cur *vision.Image, pts []Point, window, levels int) ([]TrackedPoint, error) {
	if prev.W != cur.W || prev.H != cur.H {
		return nil, fmt.Errorf("flow: frame sizes differ %dx%d vs %dx%d", prev.W, prev.H, cur.W, cur.H)
	}
	pyrPrev, err := BuildPyramid(prev, levels)
	if err != nil {
		return nil, err
	}
	pyrCur, err := BuildPyramid(cur, levels)
	if err != nil {
		return nil, err
	}
	depth := len(pyrPrev)
	out := make([]TrackedPoint, len(pts))
	for i, p := range pts {
		gx, gy := 0.0, 0.0 // estimate at the current level's scale
		valid := false
		for l := depth - 1; l >= 0; l-- {
			scale := float64(int(1) << uint(l))
			lp := Point{X: p.X / scale, Y: p.Y / scale}
			// Solve the residual against the re-centred second frame.
			warped := warp(pyrCur[l], gx, gy)
			tracked, err := LucasKanade(pyrPrev[l], warped, []Point{lp}, window)
			if err != nil {
				return nil, err
			}
			if tracked[0].Valid {
				dx, dy := tracked[0].Displacement()
				gx += dx
				gy += dy
				valid = true
			}
			if l > 0 {
				gx *= 2
				gy *= 2
			}
		}
		out[i] = TrackedPoint{
			From:  p,
			To:    Point{X: p.X + gx, Y: p.Y + gy},
			Valid: valid,
		}
	}
	return out, nil
}
