package flow

import (
	"math"
	"testing"

	"safecross/internal/vision"
)

// movingSquare renders a bright soft-edged square at (x, y) on a flat
// background; soft edges keep the brightness constancy assumption
// reasonable for sub-pixel flow estimation.
func movingSquare(w, h int, x, y float64) *vision.Image {
	im := vision.NewImage(w, h)
	im.Fill(0.2)
	for py := 0; py < h; py++ {
		for px := 0; px < w; px++ {
			dx := float64(px) - x
			dy := float64(py) - y
			if dx >= -4 && dx <= 4 && dy >= -3 && dy <= 3 {
				// Soft falloff near the edge.
				edge := math.Min(math.Min(dx+4, 4-dx), math.Min(dy+3, 3-dy))
				v := 0.2 + 0.7*math.Min(1, edge/1.5)
				im.Set(px, py, v)
			}
		}
	}
	return im
}

func TestFindCornersOnSquare(t *testing.T) {
	im := movingSquare(40, 30, 20, 15)
	pts := FindCorners(im, 8, 0.05, 3)
	if len(pts) == 0 {
		t.Fatal("no corners found on a high-contrast square")
	}
	// All corners should be near the square (within its extent + margin).
	for _, p := range pts {
		if p.X < 12 || p.X > 28 || p.Y < 8 || p.Y > 22 {
			t.Fatalf("corner (%v,%v) far from the only structure in frame", p.X, p.Y)
		}
	}
}

func TestFindCornersEmptyFrame(t *testing.T) {
	im := vision.NewImage(20, 20)
	im.Fill(0.5)
	if pts := FindCorners(im, 10, 0.01, 3); len(pts) != 0 {
		t.Fatalf("flat frame produced %d corners", len(pts))
	}
	if pts := FindCorners(im, 0, 0.01, 3); pts != nil {
		t.Fatal("maxCorners=0 must return nil")
	}
}

func TestLucasKanadeTracksTranslation(t *testing.T) {
	prev := movingSquare(48, 36, 20, 18)
	cur := movingSquare(48, 36, 21.0, 18.5)
	pts := FindCorners(prev, 6, 0.05, 3)
	if len(pts) == 0 {
		t.Fatal("no corners to track")
	}
	tracked, err := LucasKanade(prev, cur, pts, 3)
	if err != nil {
		t.Fatal(err)
	}
	valid := 0
	var sumDX, sumDY float64
	for _, tp := range tracked {
		if !tp.Valid {
			continue
		}
		dx, dy := tp.Displacement()
		sumDX += dx
		sumDY += dy
		valid++
	}
	if valid == 0 {
		t.Fatal("no valid tracks")
	}
	meanDX, meanDY := sumDX/float64(valid), sumDY/float64(valid)
	if math.Abs(meanDX-1.0) > 0.6 || math.Abs(meanDY-0.5) > 0.6 {
		t.Fatalf("mean flow (%v,%v), want ≈(1.0,0.5)", meanDX, meanDY)
	}
}

func TestLucasKanadeSizeMismatch(t *testing.T) {
	a := vision.NewImage(10, 10)
	b := vision.NewImage(11, 10)
	if _, err := LucasKanade(a, b, []Point{{X: 5, Y: 5}}, 2); err == nil {
		t.Fatal("expected size-mismatch error")
	}
}

func TestLucasKanadeFlatRegionInvalid(t *testing.T) {
	a := vision.NewImage(20, 20)
	a.Fill(0.5)
	b := a.Clone()
	tracked, err := LucasKanade(a, b, []Point{{X: 10, Y: 10}}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if tracked[0].Valid {
		t.Fatal("aperture-problem point must be flagged invalid")
	}
}

func TestHornSchunckDetectsMotionRegion(t *testing.T) {
	prev := movingSquare(48, 36, 20, 18)
	cur := movingSquare(48, 36, 22, 18)
	field, err := HornSchunck(prev, cur, 0.5, 60)
	if err != nil {
		t.Fatal(err)
	}
	mag := field.MagnitudeImage()
	// Motion energy must concentrate around the square.
	inside, outside := 0.0, 0.0
	nIn, nOut := 0, 0
	for y := 0; y < mag.H; y++ {
		for x := 0; x < mag.W; x++ {
			v := mag.At(x, y)
			if x >= 12 && x <= 30 && y >= 10 && y <= 26 {
				inside += v
				nIn++
			} else {
				outside += v
				nOut++
			}
		}
	}
	if inside/float64(nIn) <= 3*outside/float64(nOut) {
		t.Fatalf("flow magnitude not concentrated on the mover: in=%v out=%v",
			inside/float64(nIn), outside/float64(nOut))
	}
}

func TestHornSchunckStaticSceneZeroFlow(t *testing.T) {
	a := movingSquare(32, 24, 16, 12)
	field, err := HornSchunck(a, a.Clone(), 0.5, 40)
	if err != nil {
		t.Fatal(err)
	}
	for i := range field.U {
		if math.Abs(field.U[i]) > 1e-9 || math.Abs(field.V[i]) > 1e-9 {
			t.Fatal("identical frames must give zero flow")
		}
	}
}

func TestHornSchunckValidation(t *testing.T) {
	a := vision.NewImage(8, 8)
	if _, err := HornSchunck(a, vision.NewImage(9, 8), 0.5, 10); err == nil {
		t.Fatal("expected size-mismatch error")
	}
	if _, err := HornSchunck(a, a, 0.5, 0); err == nil {
		t.Fatal("expected iters error")
	}
}

func TestHornSchunckMoreItersMoreCost(t *testing.T) {
	// Not a timing test (flaky on shared machines); instead verify the
	// iteration count changes the result, i.e. iterations actually run.
	prev := movingSquare(32, 24, 14, 12)
	cur := movingSquare(32, 24, 15, 12)
	f1, err := HornSchunck(prev, cur, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := HornSchunck(prev, cur, 0.5, 50)
	if err != nil {
		t.Fatal(err)
	}
	diff := 0.0
	for i := range f1.U {
		diff += math.Abs(f1.U[i] - f2.U[i])
	}
	if diff == 0 {
		t.Fatal("iteration count has no effect; relaxation loop broken")
	}
}
