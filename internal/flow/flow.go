// Package flow implements the two optical-flow baselines the paper
// compares against background subtraction in its detection study
// (Table II, Fig. 8): sparse Lucas–Kanade corner tracking and dense
// Horn–Schunck flow.
package flow

import (
	"fmt"
	"math"
	"sort"

	"safecross/internal/vision"
)

// Point is a sub-pixel image location.
type Point struct {
	X, Y float64
}

// TrackedPoint is the result of tracking one point between frames.
type TrackedPoint struct {
	// From is the original location, To the tracked location.
	From, To Point
	// Valid reports whether the local system was well-conditioned
	// enough to produce a trustworthy estimate.
	Valid bool
}

// Displacement returns the tracked motion vector (dx, dy).
func (t TrackedPoint) Displacement() (float64, float64) {
	return t.To.X - t.From.X, t.To.Y - t.From.Y
}

// gradients computes central-difference spatial gradients.
func gradients(im *vision.Image) (ix, iy []float64) {
	ix = make([]float64, im.W*im.H)
	iy = make([]float64, im.W*im.H)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			ix[y*im.W+x] = (im.At(x+1, y) - im.At(x-1, y)) / 2
			iy[y*im.W+x] = (im.At(x, y+1) - im.At(x, y-1)) / 2
		}
	}
	return ix, iy
}

// FindCorners returns up to maxCorners Shi–Tomasi corners: locations
// where the smaller eigenvalue of the local structure tensor exceeds
// quality × (the best response in the image). Corners closer than
// minDist pixels to an already selected corner are suppressed.
//
// On the noisy low-contrast surveillance frames the paper works with,
// the strongest responses come from lane markings and sensor noise
// rather than from the small far-away vehicles — which is exactly why
// sparse optical flow fails in the paper's comparison.
func FindCorners(im *vision.Image, maxCorners int, quality float64, minDist int) []Point {
	if maxCorners <= 0 {
		return nil
	}
	ix, iy := gradients(im)
	const win = 2
	type scored struct {
		x, y int
		resp float64
	}
	var cands []scored
	best := 0.0
	// The margin keeps windows away from the outermost pixel ring,
	// where out-of-bounds reads fabricate gradients.
	const margin = win + 1
	for y := margin; y < im.H-margin; y++ {
		for x := margin; x < im.W-margin; x++ {
			var sxx, syy, sxy float64
			for dy := -win; dy <= win; dy++ {
				for dx := -win; dx <= win; dx++ {
					gx := ix[(y+dy)*im.W+(x+dx)]
					gy := iy[(y+dy)*im.W+(x+dx)]
					sxx += gx * gx
					syy += gy * gy
					sxy += gx * gy
				}
			}
			// Smaller eigenvalue of [[sxx,sxy],[sxy,syy]].
			tr := sxx + syy
			det := sxx*syy - sxy*sxy
			disc := tr*tr/4 - det
			if disc < 0 {
				disc = 0
			}
			lmin := tr/2 - math.Sqrt(disc)
			if lmin > 0 {
				cands = append(cands, scored{x: x, y: y, resp: lmin})
				if lmin > best {
					best = lmin
				}
			}
		}
	}
	if best == 0 {
		return nil
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].resp > cands[j].resp })
	threshold := quality * best
	var out []Point
	for _, c := range cands {
		if c.resp < threshold || len(out) >= maxCorners {
			break
		}
		ok := true
		for _, p := range out {
			dx, dy := float64(c.x)-p.X, float64(c.y)-p.Y
			if dx*dx+dy*dy < float64(minDist*minDist) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, Point{X: float64(c.x), Y: float64(c.y)})
		}
	}
	return out
}

// LucasKanade tracks the given points from prev to cur by solving the
// windowed least-squares flow system at each point. Points whose
// structure tensor is ill-conditioned are returned with Valid=false.
func LucasKanade(prev, cur *vision.Image, pts []Point, window int) ([]TrackedPoint, error) {
	if prev.W != cur.W || prev.H != cur.H {
		return nil, fmt.Errorf("flow: frame sizes differ %dx%d vs %dx%d", prev.W, prev.H, cur.W, cur.H)
	}
	ix, iy := gradients(prev)
	out := make([]TrackedPoint, len(pts))
	for i, p := range pts {
		px, py := int(p.X), int(p.Y)
		var sxx, syy, sxy, sxt, syt float64
		for dy := -window; dy <= window; dy++ {
			for dx := -window; dx <= window; dx++ {
				x, y := px+dx, py+dy
				if x < 0 || x >= prev.W || y < 0 || y >= prev.H {
					continue
				}
				gx := ix[y*prev.W+x]
				gy := iy[y*prev.W+x]
				gt := cur.At(x, y) - prev.At(x, y)
				sxx += gx * gx
				syy += gy * gy
				sxy += gx * gy
				sxt += gx * gt
				syt += gy * gt
			}
		}
		det := sxx*syy - sxy*sxy
		tp := TrackedPoint{From: p, To: p}
		// Conditioning guard: tiny determinant means the aperture
		// problem makes the solution meaningless.
		if det > 1e-9 {
			u := (-syy*sxt + sxy*syt) / det
			v := (sxy*sxt - sxx*syt) / det
			tp.To = Point{X: p.X + u, Y: p.Y + v}
			tp.Valid = true
		}
		out[i] = tp
	}
	return out, nil
}

// DenseField is a per-pixel flow field.
type DenseField struct {
	// W and H are the field dimensions.
	W, H int
	// U and V are the horizontal and vertical flow components,
	// row-major.
	U, V []float64
}

// MagnitudeImage returns the per-pixel flow magnitude as an image,
// which the dense-flow detector thresholds to find movers.
func (f *DenseField) MagnitudeImage() *vision.Image {
	out := vision.NewImage(f.W, f.H)
	for i := range f.U {
		out.Pix[i] = math.Hypot(f.U[i], f.V[i])
	}
	return out
}

// HornSchunck computes dense optical flow between prev and cur with
// the classic Horn–Schunck iteration: alpha is the smoothness weight
// and iters the number of relaxation sweeps. Cost grows linearly with
// iters — this is what makes dense flow two orders of magnitude
// slower than background subtraction in Table II.
func HornSchunck(prev, cur *vision.Image, alpha float64, iters int) (*DenseField, error) {
	if prev.W != cur.W || prev.H != cur.H {
		return nil, fmt.Errorf("flow: frame sizes differ %dx%d vs %dx%d", prev.W, prev.H, cur.W, cur.H)
	}
	if iters <= 0 {
		return nil, fmt.Errorf("flow: iters %d must be positive", iters)
	}
	w, h := prev.W, prev.H
	n := w * h
	ix := make([]float64, n)
	iy := make([]float64, n)
	it := make([]float64, n)
	// Horn–Schunck derivative estimates averaged over both frames.
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			ix[y*w+x] = ((prev.At(x+1, y) - prev.At(x-1, y)) + (cur.At(x+1, y) - cur.At(x-1, y))) / 4
			iy[y*w+x] = ((prev.At(x, y+1) - prev.At(x, y-1)) + (cur.At(x, y+1) - cur.At(x, y-1))) / 4
			it[y*w+x] = cur.At(x, y) - prev.At(x, y)
		}
	}
	u := make([]float64, n)
	v := make([]float64, n)
	ubar := make([]float64, n)
	vbar := make([]float64, n)
	a2 := alpha * alpha
	avg := func(f []float64, x, y int) float64 {
		s, c := 0.0, 0
		for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
			nx, ny := x+d[0], y+d[1]
			if nx < 0 || nx >= w || ny < 0 || ny >= h {
				continue
			}
			s += f[ny*w+nx]
			c++
		}
		if c == 0 {
			return 0
		}
		return s / float64(c)
	}
	for k := 0; k < iters; k++ {
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				i := y*w + x
				ubar[i] = avg(u, x, y)
				vbar[i] = avg(v, x, y)
			}
		}
		for i := 0; i < n; i++ {
			num := ix[i]*ubar[i] + iy[i]*vbar[i] + it[i]
			den := a2 + ix[i]*ix[i] + iy[i]*iy[i]
			u[i] = ubar[i] - ix[i]*num/den
			v[i] = vbar[i] - iy[i]*num/den
		}
	}
	return &DenseField{W: w, H: h, U: u, V: v}, nil
}
