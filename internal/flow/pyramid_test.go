package flow

import (
	"math"
	"testing"

	"safecross/internal/vision"
)

func TestBuildPyramid(t *testing.T) {
	im := vision.NewImage(64, 48)
	pyr, err := BuildPyramid(im, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(pyr) != 3 {
		t.Fatalf("levels = %d, want 3", len(pyr))
	}
	if pyr[1].W != 32 || pyr[2].W != 16 {
		t.Fatalf("level widths %d/%d, want 32/16", pyr[1].W, pyr[2].W)
	}
	// Early stop on small images.
	small := vision.NewImage(20, 20)
	pyr, err = BuildPyramid(small, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(pyr) != 2 {
		t.Fatalf("small image levels = %d, want 2 (early stop)", len(pyr))
	}
	if _, err := BuildPyramid(im, 0); err == nil {
		t.Fatal("expected levels error")
	}
}

// TestPyramidalRecoversLargeMotion checks the headline property:
// plain LK fails on a displacement much larger than its window while
// the pyramidal tracker recovers it.
func TestPyramidalRecoversLargeMotion(t *testing.T) {
	const shift = 9.0 // far beyond a 3-px window
	prev := movingSquare(96, 64, 40, 32)
	cur := movingSquare(96, 64, 40+shift, 32)
	pts := FindCorners(prev, 6, 0.05, 3)
	if len(pts) == 0 {
		t.Fatal("no corners to track")
	}

	plain, err := LucasKanade(prev, cur, pts, 3)
	if err != nil {
		t.Fatal(err)
	}
	pyramidal, err := LucasKanadePyramidal(prev, cur, pts, 3, 4)
	if err != nil {
		t.Fatal(err)
	}

	meanErr := func(tracked []TrackedPoint) float64 {
		sum, n := 0.0, 0
		for _, tp := range tracked {
			if !tp.Valid {
				continue
			}
			dx, dy := tp.Displacement()
			sum += math.Hypot(dx-shift, dy-0)
			n++
		}
		if n == 0 {
			return math.Inf(1)
		}
		return sum / float64(n)
	}
	plainErr := meanErr(plain)
	pyrErr := meanErr(pyramidal)
	if pyrErr > 3 {
		t.Fatalf("pyramidal tracking error %v too large for a %v-px shift", pyrErr, shift)
	}
	if pyrErr >= plainErr {
		t.Fatalf("pyramid (%v) must beat plain LK (%v) on large motion", pyrErr, plainErr)
	}
}

func TestPyramidalMatchesPlainOnSmallMotion(t *testing.T) {
	prev := movingSquare(48, 36, 20, 18)
	cur := movingSquare(48, 36, 21, 18)
	pts := FindCorners(prev, 6, 0.05, 3)
	if len(pts) == 0 {
		t.Fatal("no corners")
	}
	pyramidal, err := LucasKanadePyramidal(prev, cur, pts, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	sum, n := 0.0, 0
	for _, tp := range pyramidal {
		if !tp.Valid {
			continue
		}
		dx, _ := tp.Displacement()
		sum += dx
		n++
	}
	if n == 0 {
		t.Fatal("no valid tracks")
	}
	if mean := sum / float64(n); math.Abs(mean-1) > 0.6 {
		t.Fatalf("small-motion flow = %v, want ≈1", mean)
	}
}

func TestPyramidalValidation(t *testing.T) {
	a := vision.NewImage(32, 32)
	b := vision.NewImage(33, 32)
	if _, err := LucasKanadePyramidal(a, b, []Point{{X: 5, Y: 5}}, 3, 2); err == nil {
		t.Fatal("expected size-mismatch error")
	}
}
