package nn

import (
	"fmt"
	"math"

	"safecross/internal/tensor"
)

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update to the given parameters. Callers zero
	// the gradients afterwards (or use TrainStep helpers that do).
	Step(params []*Param) error
}

// SGD is stochastic gradient descent with optional momentum and weight
// decay. Its zero LR is invalid; construct with NewSGD.
type SGD struct {
	// LR is the learning rate.
	LR float64
	// Momentum is the classical momentum coefficient (0 disables).
	Momentum float64
	// WeightDecay is L2 regularisation strength applied to gradients.
	WeightDecay float64

	velocity map[*Param]*tensor.Tensor
}

var _ Optimizer = (*SGD)(nil)

// NewSGD creates an SGD optimizer.
func NewSGD(lr, momentum, weightDecay float64) *SGD {
	return &SGD{
		LR:          lr,
		Momentum:    momentum,
		WeightDecay: weightDecay,
		velocity:    make(map[*Param]*tensor.Tensor),
	}
}

// Step applies one SGD update.
func (s *SGD) Step(params []*Param) error {
	for _, p := range params {
		g := p.Grad
		if s.WeightDecay > 0 {
			if err := g.AddScaled(p.Value, s.WeightDecay); err != nil {
				return fmt.Errorf("sgd %q: %w", p.Name, err)
			}
		}
		if s.Momentum > 0 {
			v, ok := s.velocity[p]
			if !ok {
				v = tensor.New(p.Value.Shape...)
				s.velocity[p] = v
			}
			v.Scale(s.Momentum)
			if err := v.AddInPlace(g); err != nil {
				return fmt.Errorf("sgd %q: %w", p.Name, err)
			}
			g = v
		}
		if err := p.Value.AddScaled(g, -s.LR); err != nil {
			return fmt.Errorf("sgd %q: %w", p.Name, err)
		}
	}
	return nil
}

// Adam is the Adam optimizer (Kingma & Ba) with bias correction.
type Adam struct {
	// LR is the learning rate; B1 and B2 are the moment decay rates;
	// Eps stabilises the denominator.
	LR, B1, B2, Eps float64
	// WeightDecay is L2 regularisation strength applied to gradients.
	WeightDecay float64

	t int
	m map[*Param]*tensor.Tensor
	v map[*Param]*tensor.Tensor
}

var _ Optimizer = (*Adam)(nil)

// NewAdam creates an Adam optimizer with the standard default moment
// rates (β1=0.9, β2=0.999, ε=1e-8).
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR:  lr,
		B1:  0.9,
		B2:  0.999,
		Eps: 1e-8,
		m:   make(map[*Param]*tensor.Tensor),
		v:   make(map[*Param]*tensor.Tensor),
	}
}

// Step applies one Adam update.
func (a *Adam) Step(params []*Param) error {
	a.t++
	bc1 := 1 - math.Pow(a.B1, float64(a.t))
	bc2 := 1 - math.Pow(a.B2, float64(a.t))
	for _, p := range params {
		g := p.Grad
		if a.WeightDecay > 0 {
			if err := g.AddScaled(p.Value, a.WeightDecay); err != nil {
				return fmt.Errorf("adam %q: %w", p.Name, err)
			}
		}
		m, ok := a.m[p]
		if !ok {
			m = tensor.New(p.Value.Shape...)
			a.m[p] = m
			a.v[p] = tensor.New(p.Value.Shape...)
		}
		v := a.v[p]
		for i, gv := range g.Data {
			m.Data[i] = a.B1*m.Data[i] + (1-a.B1)*gv
			v.Data[i] = a.B2*v.Data[i] + (1-a.B2)*gv*gv
			mhat := m.Data[i] / bc1
			vhat := v.Data[i] / bc2
			p.Value.Data[i] -= a.LR * mhat / (math.Sqrt(vhat) + a.Eps)
		}
	}
	return nil
}
