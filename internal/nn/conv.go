package nn

import (
	"fmt"
	"math/rand"

	"safecross/internal/tensor"
)

// Conv2D is a 2-D convolution over [C,H,W] inputs implemented with
// im2col + matmul. Weight layout is [OutC, InC*KH*KW].
type Conv2D struct {
	W, B *Param

	inC, outC      int
	kh, kw, sh, sw int
	ph, pw         int

	// train gates the backward caches: only a training-mode Forward
	// retains its im2col matrix. Eval-mode forwards (and replicas
	// parked on serving workers) hold no per-call state.
	train        bool
	cacheCols    *tensor.Tensor
	cacheInShape [3]int
}

var (
	_ Layer          = (*Conv2D)(nil)
	_ TrainAware     = (*Conv2D)(nil)
	_ WorkspaceLayer = (*Conv2D)(nil)
)

// Conv2DConfig describes a Conv2D layer; zero strides default to 1.
type Conv2DConfig struct {
	InC, OutC int
	KH, KW    int
	SH, SW    int
	PH, PW    int
}

// NewConv2D creates a 2-D convolution with He-initialised weights.
func NewConv2D(name string, cfg Conv2DConfig, rng *rand.Rand) *Conv2D {
	if cfg.SH == 0 {
		cfg.SH = 1
	}
	if cfg.SW == 0 {
		cfg.SW = 1
	}
	fanIn := cfg.InC * cfg.KH * cfg.KW
	w := tensor.RandnTensor(rng, tensor.KaimingStd(fanIn), cfg.OutC, fanIn)
	return &Conv2D{
		W:    NewParam(name+".weight", w),
		B:    NewParam(name+".bias", tensor.New(cfg.OutC)),
		inC:  cfg.InC,
		outC: cfg.OutC,
		kh:   cfg.KH, kw: cfg.KW,
		sh: cfg.SH, sw: cfg.SW,
		ph: cfg.PH, pw: cfg.PW,
		train: true,
	}
}

// SetTrain toggles backward-cache retention. Leaving train mode drops
// the cached im2col matrix immediately, so an eval-only replica never
// pins its last input's scratch.
func (c *Conv2D) SetTrain(train bool) {
	c.train = train
	if !train {
		c.cacheCols = nil
	}
}

// Forward convolves a [InC,H,W] input into [OutC,OH,OW].
func (c *Conv2D) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	if x.Rank() != 3 || x.Shape[0] != c.inC {
		return nil, fmt.Errorf("conv2d %s: input shape %v, want [%d,H,W]", c.W.Name, x.Shape, c.inC)
	}
	cols, err := tensor.Im2Col(x, c.kh, c.kw, c.sh, c.sw, c.ph, c.pw)
	if err != nil {
		return nil, fmt.Errorf("conv2d %s: %w", c.W.Name, err)
	}
	if c.train {
		c.cacheCols = cols
		c.cacheInShape = [3]int{x.Shape[0], x.Shape[1], x.Shape[2]}
	}
	prod, err := tensor.MatMul(c.W.Value, cols)
	if err != nil {
		return nil, fmt.Errorf("conv2d %s: %w", c.W.Name, err)
	}
	oh := tensor.ConvOutSize(x.Shape[1], c.kh, c.sh, c.ph)
	ow := tensor.ConvOutSize(x.Shape[2], c.kw, c.sw, c.pw)
	out := prod.MustReshape(c.outC, oh, ow)
	n := oh * ow
	for o := 0; o < c.outC; o++ {
		b := c.B.Value.Data[o]
		row := out.Data[o*n : (o+1)*n]
		for i := range row {
			row[i] += b
		}
	}
	return out, nil
}

// Backward accumulates weight/bias gradients and returns the input
// gradient.
func (c *Conv2D) Backward(dout *tensor.Tensor) (*tensor.Tensor, error) {
	if c.cacheCols == nil {
		return nil, fmt.Errorf("conv2d %s: Backward without a train-mode Forward", c.W.Name)
	}
	n := c.cacheCols.Shape[1]
	if dout.Len() != c.outC*n {
		return nil, fmt.Errorf("conv2d %s: grad size %d, want %d", c.W.Name, dout.Len(), c.outC*n)
	}
	doutM := dout.MustReshape(c.outC, n)

	// dB: row sums of dout.
	for o := 0; o < c.outC; o++ {
		s := 0.0
		for _, v := range doutM.Data[o*n : (o+1)*n] {
			s += v
		}
		c.B.Grad.Data[o] += s
	}
	// dW = dout · colsᵀ.
	dw, err := tensor.MatMulTransB(doutM, c.cacheCols)
	if err != nil {
		return nil, fmt.Errorf("conv2d %s: %w", c.W.Name, err)
	}
	if err := c.W.Grad.AddInPlace(dw); err != nil {
		return nil, fmt.Errorf("conv2d %s: %w", c.W.Name, err)
	}
	// dcols = Wᵀ · dout, then scatter back to input space.
	dcols, err := tensor.MatMulTransA(c.W.Value, doutM)
	if err != nil {
		return nil, fmt.Errorf("conv2d %s: %w", c.W.Name, err)
	}
	s := c.cacheInShape
	dx, err := tensor.Col2Im(dcols, s[0], s[1], s[2], c.kh, c.kw, c.sh, c.sw, c.ph, c.pw)
	if err != nil {
		return nil, fmt.Errorf("conv2d %s: %w", c.W.Name, err)
	}
	return dx, nil
}

// ForwardWS is the eval-mode forward: the column matrix and output
// come from ws, no backward cache is written, and a channel-major
// batched input [C,M,H,W] convolves all M samples with one im2col and
// one matmul, yielding [OutC,M,OH,OW].
func (c *Conv2D) ForwardWS(x *tensor.Tensor, ws *Workspace) (*tensor.Tensor, error) {
	m := 1
	var h, w int
	switch {
	case x.Rank() == 3 && x.Shape[0] == c.inC:
		h, w = x.Shape[1], x.Shape[2]
	case x.Rank() == 4 && x.Shape[0] == c.inC:
		m, h, w = x.Shape[1], x.Shape[2], x.Shape[3]
	default:
		return nil, fmt.Errorf("conv2d %s: input shape %v, want [%d,(M,)H,W]", c.W.Name, x.Shape, c.inC)
	}
	oh := tensor.ConvOutSize(h, c.kh, c.sh, c.ph)
	ow := tensor.ConvOutSize(w, c.kw, c.sw, c.pw)
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("conv2d %s: kernel %dx%d too large for input %v", c.W.Name, c.kh, c.kw, x.Shape)
	}
	n := m * oh * ow
	cols := ws.Get(c.inC*c.kh*c.kw, n)
	if err := tensor.Im2ColBatchInto(cols, x, m, c.kh, c.kw, c.sh, c.sw, c.ph, c.pw); err != nil {
		return nil, fmt.Errorf("conv2d %s: %w", c.W.Name, err)
	}
	out := ws.Get(c.outC, n)
	if err := tensor.MatMulInto(out, c.W.Value, cols); err != nil {
		return nil, fmt.Errorf("conv2d %s: %w", c.W.Name, err)
	}
	addBiasRows(out.Data, c.B.Value.Data, c.outC, n)
	if x.Rank() == 3 {
		out.Shape = append(out.Shape[:0], c.outC, oh, ow)
	} else {
		out.Shape = append(out.Shape[:0], c.outC, m, oh, ow)
	}
	return out, nil
}

// addBiasRows adds bias[o] to each of the rows rows of n contiguous
// output positions, fanning rows out over the kernel pool. The
// closure is built only when the job splits, keeping small inline
// kernels allocation-free.
func addBiasRows(data, bias []float64, rows, n int) {
	if tensor.ParallelChunks(rows, n) <= 1 {
		addBiasRowsChunk(data, bias, n, 0, rows)
		return
	}
	tensor.ParallelFor(rows, n, func(lo, hi int) {
		addBiasRowsChunk(data, bias, n, lo, hi)
	})
}

func addBiasRowsChunk(data, bias []float64, n, lo, hi int) {
	for o := lo; o < hi; o++ {
		b := bias[o]
		row := data[o*n : (o+1)*n]
		for i := range row {
			row[i] += b
		}
	}
}

// Params returns the weight and bias parameters.
func (c *Conv2D) Params() []*Param { return []*Param{c.W, c.B} }

// Conv3D is a spatio-temporal convolution over [C,T,H,W] inputs, the
// building block of the SlowFast and C3D video classifiers. Weight
// layout is [OutC, InC*KT*KH*KW].
type Conv3D struct {
	W, B *Param

	inC, outC  int
	kt, kh, kw int
	st, sh, sw int
	pt, ph, pw int

	// train gates the backward caches exactly as in Conv2D.
	train        bool
	cacheCols    *tensor.Tensor
	cacheInShape [4]int
}

var (
	_ Layer          = (*Conv3D)(nil)
	_ TrainAware     = (*Conv3D)(nil)
	_ WorkspaceLayer = (*Conv3D)(nil)
)

// Conv3DConfig describes a Conv3D layer; zero strides default to 1.
type Conv3DConfig struct {
	InC, OutC  int
	KT, KH, KW int
	ST, SH, SW int
	PT, PH, PW int
}

// NewConv3D creates a 3-D convolution with He-initialised weights.
func NewConv3D(name string, cfg Conv3DConfig, rng *rand.Rand) *Conv3D {
	if cfg.ST == 0 {
		cfg.ST = 1
	}
	if cfg.SH == 0 {
		cfg.SH = 1
	}
	if cfg.SW == 0 {
		cfg.SW = 1
	}
	fanIn := cfg.InC * cfg.KT * cfg.KH * cfg.KW
	w := tensor.RandnTensor(rng, tensor.KaimingStd(fanIn), cfg.OutC, fanIn)
	return &Conv3D{
		W:    NewParam(name+".weight", w),
		B:    NewParam(name+".bias", tensor.New(cfg.OutC)),
		inC:  cfg.InC,
		outC: cfg.OutC,
		kt:   cfg.KT, kh: cfg.KH, kw: cfg.KW,
		st: cfg.ST, sh: cfg.SH, sw: cfg.SW,
		pt: cfg.PT, ph: cfg.PH, pw: cfg.PW,
		train: true,
	}
}

// SetTrain toggles backward-cache retention; leaving train mode drops
// the cached im2col matrix immediately.
func (c *Conv3D) SetTrain(train bool) {
	c.train = train
	if !train {
		c.cacheCols = nil
	}
}

// Forward convolves a [InC,T,H,W] input into [OutC,OT,OH,OW].
func (c *Conv3D) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	if x.Rank() != 4 || x.Shape[0] != c.inC {
		return nil, fmt.Errorf("conv3d %s: input shape %v, want [%d,T,H,W]", c.W.Name, x.Shape, c.inC)
	}
	cols, err := tensor.Im2Col3D(x, c.kt, c.kh, c.kw, c.st, c.sh, c.sw, c.pt, c.ph, c.pw)
	if err != nil {
		return nil, fmt.Errorf("conv3d %s: %w", c.W.Name, err)
	}
	if c.train {
		c.cacheCols = cols
		c.cacheInShape = [4]int{x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]}
	}
	prod, err := tensor.MatMul(c.W.Value, cols)
	if err != nil {
		return nil, fmt.Errorf("conv3d %s: %w", c.W.Name, err)
	}
	ot := tensor.ConvOutSize(x.Shape[1], c.kt, c.st, c.pt)
	oh := tensor.ConvOutSize(x.Shape[2], c.kh, c.sh, c.ph)
	ow := tensor.ConvOutSize(x.Shape[3], c.kw, c.sw, c.pw)
	out := prod.MustReshape(c.outC, ot, oh, ow)
	n := ot * oh * ow
	for o := 0; o < c.outC; o++ {
		b := c.B.Value.Data[o]
		row := out.Data[o*n : (o+1)*n]
		for i := range row {
			row[i] += b
		}
	}
	return out, nil
}

// Backward accumulates weight/bias gradients and returns the input
// gradient.
func (c *Conv3D) Backward(dout *tensor.Tensor) (*tensor.Tensor, error) {
	if c.cacheCols == nil {
		return nil, fmt.Errorf("conv3d %s: Backward without a train-mode Forward", c.W.Name)
	}
	n := c.cacheCols.Shape[1]
	if dout.Len() != c.outC*n {
		return nil, fmt.Errorf("conv3d %s: grad size %d, want %d", c.W.Name, dout.Len(), c.outC*n)
	}
	doutM := dout.MustReshape(c.outC, n)

	for o := 0; o < c.outC; o++ {
		s := 0.0
		for _, v := range doutM.Data[o*n : (o+1)*n] {
			s += v
		}
		c.B.Grad.Data[o] += s
	}
	dw, err := tensor.MatMulTransB(doutM, c.cacheCols)
	if err != nil {
		return nil, fmt.Errorf("conv3d %s: %w", c.W.Name, err)
	}
	if err := c.W.Grad.AddInPlace(dw); err != nil {
		return nil, fmt.Errorf("conv3d %s: %w", c.W.Name, err)
	}
	dcols, err := tensor.MatMulTransA(c.W.Value, doutM)
	if err != nil {
		return nil, fmt.Errorf("conv3d %s: %w", c.W.Name, err)
	}
	s := c.cacheInShape
	dx, err := tensor.Col2Im3D(dcols, s[0], s[1], s[2], s[3],
		c.kt, c.kh, c.kw, c.st, c.sh, c.sw, c.pt, c.ph, c.pw)
	if err != nil {
		return nil, fmt.Errorf("conv3d %s: %w", c.W.Name, err)
	}
	return dx, nil
}

// ForwardWS is the eval-mode forward: scratch comes from ws, no
// backward cache is written, and a channel-major batched input
// [C,N,T,H,W] convolves all N volumes with one im2col and one matmul,
// yielding [OutC,N,OT,OH,OW].
func (c *Conv3D) ForwardWS(x *tensor.Tensor, ws *Workspace) (*tensor.Tensor, error) {
	bn := 1
	var t, h, w int
	switch {
	case x.Rank() == 4 && x.Shape[0] == c.inC:
		t, h, w = x.Shape[1], x.Shape[2], x.Shape[3]
	case x.Rank() == 5 && x.Shape[0] == c.inC:
		bn, t, h, w = x.Shape[1], x.Shape[2], x.Shape[3], x.Shape[4]
	default:
		return nil, fmt.Errorf("conv3d %s: input shape %v, want [%d,(N,)T,H,W]", c.W.Name, x.Shape, c.inC)
	}
	ot := tensor.ConvOutSize(t, c.kt, c.st, c.pt)
	oh := tensor.ConvOutSize(h, c.kh, c.sh, c.ph)
	ow := tensor.ConvOutSize(w, c.kw, c.sw, c.pw)
	if ot <= 0 || oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("conv3d %s: kernel %dx%dx%d too large for input %v", c.W.Name, c.kt, c.kh, c.kw, x.Shape)
	}
	n := bn * ot * oh * ow
	cols := ws.Get(c.inC*c.kt*c.kh*c.kw, n)
	if err := tensor.Im2Col3DBatchInto(cols, x, bn, c.kt, c.kh, c.kw, c.st, c.sh, c.sw, c.pt, c.ph, c.pw); err != nil {
		return nil, fmt.Errorf("conv3d %s: %w", c.W.Name, err)
	}
	out := ws.Get(c.outC, n)
	if err := tensor.MatMulInto(out, c.W.Value, cols); err != nil {
		return nil, fmt.Errorf("conv3d %s: %w", c.W.Name, err)
	}
	addBiasRows(out.Data, c.B.Value.Data, c.outC, n)
	if x.Rank() == 4 {
		out.Shape = append(out.Shape[:0], c.outC, ot, oh, ow)
	} else {
		out.Shape = append(out.Shape[:0], c.outC, bn, ot, oh, ow)
	}
	return out, nil
}

// Params returns the weight and bias parameters.
func (c *Conv3D) Params() []*Param { return []*Param{c.W, c.B} }

// MaxPool2D is a 2-D max pooling layer over [C,H,W] inputs.
type MaxPool2D struct {
	// K and S are the square kernel size and stride.
	K, S int

	cacheArg     []int
	cacheInShape [3]int
}

var _ Layer = (*MaxPool2D)(nil)

// NewMaxPool2D creates a max-pool layer with kernel k and stride s.
func NewMaxPool2D(k, s int) *MaxPool2D { return &MaxPool2D{K: k, S: s} }

// Forward pools each channel plane, remembering argmax positions.
func (m *MaxPool2D) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	if x.Rank() != 3 {
		return nil, fmt.Errorf("maxpool2d: input shape %v, want [C,H,W]", x.Shape)
	}
	c, h, w := x.Shape[0], x.Shape[1], x.Shape[2]
	oh := tensor.ConvOutSize(h, m.K, m.S, 0)
	ow := tensor.ConvOutSize(w, m.K, m.S, 0)
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("maxpool2d: kernel %d too large for input %v", m.K, x.Shape)
	}
	out := tensor.New(c, oh, ow)
	if cap(m.cacheArg) < out.Len() {
		m.cacheArg = make([]int, out.Len())
	}
	m.cacheArg = m.cacheArg[:out.Len()]
	m.cacheInShape = [3]int{c, h, w}
	for ci := 0; ci < c; ci++ {
		plane := x.Data[ci*h*w:]
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				best, bestIdx := plane[(oy*m.S)*w+ox*m.S], (oy*m.S)*w+ox*m.S
				for ky := 0; ky < m.K; ky++ {
					iy := oy*m.S + ky
					if iy >= h {
						break
					}
					for kx := 0; kx < m.K; kx++ {
						ix := ox*m.S + kx
						if ix >= w {
							break
						}
						if v := plane[iy*w+ix]; v > best {
							best, bestIdx = v, iy*w+ix
						}
					}
				}
				oi := (ci*oh+oy)*ow + ox
				out.Data[oi] = best
				m.cacheArg[oi] = ci*h*w + bestIdx
			}
		}
	}
	return out, nil
}

// Backward routes each gradient to the position that won the max.
func (m *MaxPool2D) Backward(dout *tensor.Tensor) (*tensor.Tensor, error) {
	if dout.Len() != len(m.cacheArg) {
		return nil, fmt.Errorf("maxpool2d: grad size %d, want %d", dout.Len(), len(m.cacheArg))
	}
	s := m.cacheInShape
	dx := tensor.New(s[0], s[1], s[2])
	for i, src := range m.cacheArg {
		dx.Data[src] += dout.Data[i]
	}
	return dx, nil
}

// ForwardWS is the eval-mode forward: the output comes from ws and no
// argmax cache is written. A channel-major batched input [C,M,H,W]
// pools every sample plane, yielding [C,M,OH,OW].
func (m *MaxPool2D) ForwardWS(x *tensor.Tensor, ws *Workspace) (*tensor.Tensor, error) {
	bn := 1
	var c, h, w int
	switch x.Rank() {
	case 3:
		c, h, w = x.Shape[0], x.Shape[1], x.Shape[2]
	case 4:
		c, bn, h, w = x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	default:
		return nil, fmt.Errorf("maxpool2d: input shape %v, want [C,(M,)H,W]", x.Shape)
	}
	oh := tensor.ConvOutSize(h, m.K, m.S, 0)
	ow := tensor.ConvOutSize(w, m.K, m.S, 0)
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("maxpool2d: kernel %d too large for input %v", m.K, x.Shape)
	}
	var out *tensor.Tensor
	if x.Rank() == 3 {
		out = ws.Get(c, oh, ow)
	} else {
		out = ws.Get(c, bn, oh, ow)
	}
	planes := c * bn
	if tensor.ParallelChunks(planes, oh*ow*m.K*m.K) <= 1 {
		maxPoolPlanes(out.Data, x.Data, h, w, oh, ow, m.K, m.S, 0, planes)
	} else {
		tensor.ParallelFor(planes, oh*ow*m.K*m.K, func(lo, hi int) {
			maxPoolPlanes(out.Data, x.Data, h, w, oh, ow, m.K, m.S, lo, hi)
		})
	}
	return out, nil
}

// maxPoolPlanes pools planes [lo, hi) — the chunk body of the
// MaxPool2D eval forward.
func maxPoolPlanes(outData, xData []float64, h, w, oh, ow, k, s, lo, hi int) {
	for pi := lo; pi < hi; pi++ {
		plane := xData[pi*h*w:]
		dst := outData[pi*oh*ow:]
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				best := plane[(oy*s)*w+ox*s]
				for ky := 0; ky < k; ky++ {
					iy := oy*s + ky
					if iy >= h {
						break
					}
					for kx := 0; kx < k; kx++ {
						ix := ox*s + kx
						if ix >= w {
							break
						}
						if v := plane[iy*w+ix]; v > best {
							best = v
						}
					}
				}
				dst[oy*ow+ox] = best
			}
		}
	}
}

// Params returns nil; pooling has no parameters.
func (m *MaxPool2D) Params() []*Param { return nil }

// GlobalAvgPool3D reduces a [C,T,H,W] tensor to a rank-1 [C] vector by
// averaging over all spatio-temporal positions. It is the final
// pooling stage of the video classifiers.
type GlobalAvgPool3D struct {
	cacheInShape [4]int
}

var _ Layer = (*GlobalAvgPool3D)(nil)

// NewGlobalAvgPool3D returns a global average-pooling layer.
func NewGlobalAvgPool3D() *GlobalAvgPool3D { return &GlobalAvgPool3D{} }

// Forward averages each channel volume to a single value.
func (g *GlobalAvgPool3D) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	if x.Rank() != 4 {
		return nil, fmt.Errorf("gap3d: input shape %v, want [C,T,H,W]", x.Shape)
	}
	c := x.Shape[0]
	vol := x.Shape[1] * x.Shape[2] * x.Shape[3]
	g.cacheInShape = [4]int{x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]}
	out := tensor.New(c)
	for ci := 0; ci < c; ci++ {
		s := 0.0
		for _, v := range x.Data[ci*vol : (ci+1)*vol] {
			s += v
		}
		out.Data[ci] = s / float64(vol)
	}
	return out, nil
}

// Backward spreads each channel gradient uniformly over its volume.
func (g *GlobalAvgPool3D) Backward(dout *tensor.Tensor) (*tensor.Tensor, error) {
	s := g.cacheInShape
	if dout.Len() != s[0] {
		return nil, fmt.Errorf("gap3d: grad size %d, want %d", dout.Len(), s[0])
	}
	vol := s[1] * s[2] * s[3]
	dx := tensor.New(s[0], s[1], s[2], s[3])
	inv := 1 / float64(vol)
	for ci := 0; ci < s[0]; ci++ {
		gv := dout.Data[ci] * inv
		row := dx.Data[ci*vol : (ci+1)*vol]
		for i := range row {
			row[i] = gv
		}
	}
	return dx, nil
}

// ForwardWS is the eval-mode forward. A channel-major batched input
// [C,N,T,H,W] reduces to a [N,C] feature matrix (one feature row per
// sample, ready for a batched Linear); a single [C,T,H,W] volume
// yields [1,C]. Each feature sums its volume in ascending order, so
// values are bit-identical to Forward.
func (g *GlobalAvgPool3D) ForwardWS(x *tensor.Tensor, ws *Workspace) (*tensor.Tensor, error) {
	bn := 1
	var c, vol int
	switch x.Rank() {
	case 4:
		c, vol = x.Shape[0], x.Shape[1]*x.Shape[2]*x.Shape[3]
	case 5:
		c, bn, vol = x.Shape[0], x.Shape[1], x.Shape[2]*x.Shape[3]*x.Shape[4]
	default:
		return nil, fmt.Errorf("gap3d: input shape %v, want [C,(N,)T,H,W]", x.Shape)
	}
	out := ws.Get(bn, c)
	if tensor.ParallelChunks(c*bn, vol) <= 1 {
		gapPlanes(out.Data, x.Data, c, bn, vol, 0, c*bn)
	} else {
		tensor.ParallelFor(c*bn, vol, func(lo, hi int) {
			gapPlanes(out.Data, x.Data, c, bn, vol, lo, hi)
		})
	}
	return out, nil
}

// gapPlanes averages planes [lo, hi) — the chunk body of the
// GlobalAvgPool3D eval forward.
func gapPlanes(outData, xData []float64, c, bn, vol, lo, hi int) {
	fvol := float64(vol)
	for pi := lo; pi < hi; pi++ {
		ci, ni := pi/bn, pi%bn
		s := 0.0
		for _, v := range xData[pi*vol : (pi+1)*vol] {
			s += v
		}
		outData[ni*c+ci] = s / fvol
	}
}

// Params returns nil; pooling has no parameters.
func (g *GlobalAvgPool3D) Params() []*Param { return nil }

// TemporalAvgPool averages a [C,T,H,W] tensor over the time axis with
// a given stride/kernel, producing [C,T/k,H,W]. TSN-style consensus
// and the fast→slow lateral reduction use it.
type TemporalAvgPool struct {
	// K is the temporal kernel (and stride): non-overlapping windows.
	K int

	cacheInShape [4]int
}

var _ Layer = (*TemporalAvgPool)(nil)

// NewTemporalAvgPool creates a temporal average pool with window k.
func NewTemporalAvgPool(k int) *TemporalAvgPool { return &TemporalAvgPool{K: k} }

// Forward averages non-overlapping windows of K frames.
func (p *TemporalAvgPool) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	if x.Rank() != 4 {
		return nil, fmt.Errorf("tpool: input shape %v, want [C,T,H,W]", x.Shape)
	}
	c, t, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	if p.K <= 0 || t%p.K != 0 {
		return nil, fmt.Errorf("tpool: T=%d not divisible by window %d", t, p.K)
	}
	p.cacheInShape = [4]int{c, t, h, w}
	ot := t / p.K
	out := tensor.New(c, ot, h, w)
	spat := h * w
	inv := 1 / float64(p.K)
	for ci := 0; ci < c; ci++ {
		for oz := 0; oz < ot; oz++ {
			dst := out.Data[(ci*ot+oz)*spat : (ci*ot+oz+1)*spat]
			for k := 0; k < p.K; k++ {
				src := x.Data[(ci*t+oz*p.K+k)*spat:]
				for i := range dst {
					dst[i] += src[i]
				}
			}
			for i := range dst {
				dst[i] *= inv
			}
		}
	}
	return out, nil
}

// Backward spreads gradients uniformly over each pooled window.
func (p *TemporalAvgPool) Backward(dout *tensor.Tensor) (*tensor.Tensor, error) {
	s := p.cacheInShape
	c, t, h, w := s[0], s[1], s[2], s[3]
	ot := t / p.K
	if dout.Len() != c*ot*h*w {
		return nil, fmt.Errorf("tpool: grad size %d, want %d", dout.Len(), c*ot*h*w)
	}
	dx := tensor.New(c, t, h, w)
	spat := h * w
	inv := 1 / float64(p.K)
	for ci := 0; ci < c; ci++ {
		for oz := 0; oz < ot; oz++ {
			src := dout.Data[(ci*ot+oz)*spat : (ci*ot+oz+1)*spat]
			for k := 0; k < p.K; k++ {
				dst := dx.Data[(ci*t+oz*p.K+k)*spat:]
				for i, v := range src {
					dst[i] = v * inv
				}
			}
		}
	}
	return dx, nil
}

// ForwardWS is the eval-mode forward. A channel-major batched input
// [C,N,T,H,W] pools every sample's time axis, yielding [C,N,T/K,H,W].
func (p *TemporalAvgPool) ForwardWS(x *tensor.Tensor, ws *Workspace) (*tensor.Tensor, error) {
	bn := 1
	var c, t, h, w int
	switch x.Rank() {
	case 4:
		c, t, h, w = x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	case 5:
		c, bn, t, h, w = x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3], x.Shape[4]
	default:
		return nil, fmt.Errorf("tpool: input shape %v, want [C,(N,)T,H,W]", x.Shape)
	}
	if p.K <= 0 || t%p.K != 0 {
		return nil, fmt.Errorf("tpool: T=%d not divisible by window %d", t, p.K)
	}
	ot := t / p.K
	var out *tensor.Tensor
	if x.Rank() == 4 {
		out = ws.Get(c, ot, h, w)
	} else {
		out = ws.Get(c, bn, ot, h, w)
	}
	spat := h * w
	if tensor.ParallelChunks(c*bn, ot*spat*p.K) <= 1 {
		tpoolPlanes(out.Data, x.Data, t, ot, spat, p.K, 0, c*bn)
	} else {
		tensor.ParallelFor(c*bn, ot*spat*p.K, func(lo, hi int) {
			tpoolPlanes(out.Data, x.Data, t, ot, spat, p.K, lo, hi)
		})
	}
	return out, nil
}

// tpoolPlanes averages temporal windows for planes [lo, hi) — the
// chunk body of the TemporalAvgPool eval forward.
func tpoolPlanes(outData, xData []float64, t, ot, spat, k, lo, hi int) {
	inv := 1 / float64(k)
	for pi := lo; pi < hi; pi++ {
		src := xData[pi*t*spat:]
		for oz := 0; oz < ot; oz++ {
			dst := outData[pi*ot*spat+oz*spat : pi*ot*spat+(oz+1)*spat]
			for i := range dst {
				dst[i] = 0
			}
			for kk := 0; kk < k; kk++ {
				win := src[(oz*k+kk)*spat:]
				for i := range dst {
					dst[i] += win[i]
				}
			}
			for i := range dst {
				dst[i] *= inv
			}
		}
	}
}

// Params returns nil; pooling has no parameters.
func (p *TemporalAvgPool) Params() []*Param { return nil }
