package nn

import (
	"fmt"
	"math/rand"

	"safecross/internal/tensor"
)

// Linear is a fully connected layer computing y = W·x + b on rank-1
// inputs.
type Linear struct {
	// W has shape [Out, In]; B has shape [Out].
	W, B *Param

	in, out int
	cacheX  *tensor.Tensor
}

var _ Layer = (*Linear)(nil)

// NewLinear creates a fully connected layer with He-initialised
// weights drawn from rng. The name prefixes the parameter names.
func NewLinear(name string, in, out int, rng *rand.Rand) *Linear {
	w := tensor.RandnTensor(rng, tensor.KaimingStd(in), out, in)
	return &Linear{
		W:   NewParam(name+".weight", w),
		B:   NewParam(name+".bias", tensor.New(out)),
		in:  in,
		out: out,
	}
}

// Forward computes W·x + b for a rank-1 input of length In.
func (l *Linear) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	if x.Len() != l.in {
		return nil, fmt.Errorf("linear %s: input length %d, want %d", l.W.Name, x.Len(), l.in)
	}
	l.cacheX = x
	y := tensor.New(l.out)
	for o := 0; o < l.out; o++ {
		row := l.W.Value.Data[o*l.in : (o+1)*l.in]
		s := l.B.Value.Data[o]
		for i, xv := range x.Data {
			s += row[i] * xv
		}
		y.Data[o] = s
	}
	return y, nil
}

// Backward accumulates dW = dout⊗x and dB = dout, and returns
// dx = Wᵀ·dout.
func (l *Linear) Backward(dout *tensor.Tensor) (*tensor.Tensor, error) {
	if dout.Len() != l.out {
		return nil, fmt.Errorf("linear %s: grad length %d, want %d", l.W.Name, dout.Len(), l.out)
	}
	if l.cacheX == nil {
		return nil, fmt.Errorf("linear %s: Backward before Forward", l.W.Name)
	}
	dx := tensor.New(l.in)
	for o := 0; o < l.out; o++ {
		g := dout.Data[o]
		l.B.Grad.Data[o] += g
		wrow := l.W.Value.Data[o*l.in : (o+1)*l.in]
		grow := l.W.Grad.Data[o*l.in : (o+1)*l.in]
		for i, xv := range l.cacheX.Data {
			grow[i] += g * xv
			dx.Data[i] += g * wrow[i]
		}
	}
	return dx, nil
}

// ForwardWS is the eval-mode forward: the output comes from ws and no
// input cache is retained. A rank-2 [N,In] input is treated as a batch
// of N feature rows, yielding [N,Out]; each row seeds its accumulator
// with the bias and sums features in ascending order, exactly like
// Forward, so logits are bit-identical to the per-sample path.
func (l *Linear) ForwardWS(x *tensor.Tensor, ws *Workspace) (*tensor.Tensor, error) {
	m := 1
	switch {
	case x.Rank() == 2 && x.Shape[1] == l.in:
		m = x.Shape[0]
	case x.Rank() != 2 && x.Len() == l.in:
	default:
		return nil, fmt.Errorf("linear %s: input shape %v, want [(N,)%d]", l.W.Name, x.Shape, l.in)
	}
	var out *tensor.Tensor
	if x.Rank() == 2 {
		out = ws.Get(m, l.out)
	} else {
		out = ws.Get(l.out)
	}
	if tensor.ParallelChunks(m, 2*l.in*l.out) <= 1 {
		linearRows(out.Data, x.Data, l.W.Value.Data, l.B.Value.Data, l.in, l.out, 0, m)
	} else {
		tensor.ParallelFor(m, 2*l.in*l.out, func(lo, hi int) {
			linearRows(out.Data, x.Data, l.W.Value.Data, l.B.Value.Data, l.in, l.out, lo, hi)
		})
	}
	return out, nil
}

// linearRows computes output rows [lo, hi) — the chunk body of the
// Linear eval forward.
func linearRows(outData, xData, w, b []float64, in, outDim, lo, hi int) {
	for mi := lo; mi < hi; mi++ {
		xrow := xData[mi*in : (mi+1)*in]
		orow := outData[mi*outDim : (mi+1)*outDim]
		for o := 0; o < outDim; o++ {
			wrow := w[o*in : (o+1)*in]
			s := b[o]
			for i, xv := range xrow {
				s += wrow[i] * xv
			}
			orow[o] = s
		}
	}
}

// Params returns the weight and bias parameters.
func (l *Linear) Params() []*Param { return []*Param{l.W, l.B} }

// ReLU is the rectified linear activation, applied element-wise.
type ReLU struct {
	mask []bool
}

var _ Layer = (*ReLU)(nil)

// NewReLU returns a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward zeroes negative elements and remembers which survived.
func (r *ReLU) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	out := tensor.New(x.Shape...)
	if cap(r.mask) < len(x.Data) {
		r.mask = make([]bool, len(x.Data))
	}
	r.mask = r.mask[:len(x.Data)]
	for i, v := range x.Data {
		pass := v > 0
		r.mask[i] = pass
		if pass {
			out.Data[i] = v
		}
	}
	return out, nil
}

// Backward passes gradients only through positions that were positive.
func (r *ReLU) Backward(dout *tensor.Tensor) (*tensor.Tensor, error) {
	if len(dout.Data) != len(r.mask) {
		return nil, fmt.Errorf("relu: grad length %d, want %d", len(dout.Data), len(r.mask))
	}
	dx := tensor.New(dout.Shape...)
	for i, pass := range r.mask {
		if pass {
			dx.Data[i] = dout.Data[i]
		}
	}
	return dx, nil
}

// ForwardWS is the eval-mode forward: the output comes from ws and no
// backward mask is written. Shape-agnostic, so batched channel-major
// inputs pass through unchanged in layout.
func (r *ReLU) ForwardWS(x *tensor.Tensor, ws *Workspace) (*tensor.Tensor, error) {
	out := ws.Get(x.Shape...)
	if tensor.ParallelChunks(len(x.Data), 1) <= 1 {
		reluChunk(out.Data, x.Data, 0, len(x.Data))
	} else {
		tensor.ParallelFor(len(x.Data), 1, func(lo, hi int) {
			reluChunk(out.Data, x.Data, lo, hi)
		})
	}
	return out, nil
}

// reluChunk clamps elements [lo, hi) — the chunk body of the ReLU
// eval forward.
func reluChunk(outData, xData []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		if v := xData[i]; v > 0 {
			outData[i] = v
		} else {
			outData[i] = 0
		}
	}
}

// Params returns nil; ReLU has no parameters.
func (r *ReLU) Params() []*Param { return nil }

// LeakyReLU is ReLU with a small negative-side slope, used by the
// yolite detector stem where dead units hurt its tiny capacity.
type LeakyReLU struct {
	// Alpha is the negative-side slope (e.g. 0.1).
	Alpha float64

	cacheX *tensor.Tensor
}

var _ Layer = (*LeakyReLU)(nil)

// NewLeakyReLU returns a LeakyReLU with the given negative slope.
func NewLeakyReLU(alpha float64) *LeakyReLU { return &LeakyReLU{Alpha: alpha} }

// Forward applies max(x, αx).
func (r *LeakyReLU) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	r.cacheX = x
	out := tensor.New(x.Shape...)
	for i, v := range x.Data {
		if v > 0 {
			out.Data[i] = v
		} else {
			out.Data[i] = r.Alpha * v
		}
	}
	return out, nil
}

// Backward scales gradients by 1 or α depending on the cached sign.
func (r *LeakyReLU) Backward(dout *tensor.Tensor) (*tensor.Tensor, error) {
	if r.cacheX == nil || len(dout.Data) != len(r.cacheX.Data) {
		return nil, fmt.Errorf("leakyrelu: grad/input mismatch")
	}
	dx := tensor.New(dout.Shape...)
	for i, v := range r.cacheX.Data {
		if v > 0 {
			dx.Data[i] = dout.Data[i]
		} else {
			dx.Data[i] = r.Alpha * dout.Data[i]
		}
	}
	return dx, nil
}

// Params returns nil; LeakyReLU has no parameters.
func (r *LeakyReLU) Params() []*Param { return nil }

// Flatten reshapes any input to a rank-1 vector and restores the shape
// on the way back.
type Flatten struct {
	cacheShape []int
}

var _ Layer = (*Flatten)(nil)

// NewFlatten returns a Flatten layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Forward flattens x to rank 1.
func (f *Flatten) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	f.cacheShape = append(f.cacheShape[:0], x.Shape...)
	return x.Reshape(x.Len())
}

// Backward restores the original input shape.
func (f *Flatten) Backward(dout *tensor.Tensor) (*tensor.Tensor, error) {
	return dout.Reshape(f.cacheShape...)
}

// ForwardWS is the eval-mode forward. A rank-4 channel-major batched
// input [C,M,H,W] gathers into an [M, C*H*W] feature matrix whose
// per-sample feature order matches the single-sample flatten (channel
// index outermost). Any other rank is a single sample and flattens to
// rank 1, like Forward.
func (f *Flatten) ForwardWS(x *tensor.Tensor, ws *Workspace) (*tensor.Tensor, error) {
	if x.Rank() != 4 {
		out := ws.Get(x.Len())
		copy(out.Data, x.Data)
		return out, nil
	}
	c, m := x.Shape[0], x.Shape[1]
	vol := x.Shape[2] * x.Shape[3]
	feat := c * vol
	out := ws.Get(m, feat)
	if tensor.ParallelChunks(m, feat) <= 1 {
		flattenRows(out.Data, x.Data, c, m, vol, feat, 0, m)
	} else {
		tensor.ParallelFor(m, feat, func(lo, hi int) {
			flattenRows(out.Data, x.Data, c, m, vol, feat, lo, hi)
		})
	}
	return out, nil
}

// flattenRows de-interleaves samples [lo, hi) from channel-major to
// sample-major — the chunk body of the Flatten eval forward.
func flattenRows(outData, xData []float64, c, m, vol, feat, lo, hi int) {
	for mi := lo; mi < hi; mi++ {
		dst := outData[mi*feat:]
		for ci := 0; ci < c; ci++ {
			copy(dst[ci*vol:(ci+1)*vol], xData[(ci*m+mi)*vol:])
		}
	}
}

// Params returns nil; Flatten has no parameters.
func (f *Flatten) Params() []*Param { return nil }

// Dropout randomly zeroes a fraction of activations during training
// and is the identity during evaluation. Scaling uses the inverted
// dropout convention so evaluation needs no rescale.
type Dropout struct {
	// Rate is the drop probability in [0, 1).
	Rate float64

	rng   *rand.Rand
	train bool
	mask  []float64
}

var (
	_ Layer      = (*Dropout)(nil)
	_ TrainAware = (*Dropout)(nil)
)

// NewDropout creates a dropout layer with the given drop rate, using
// rng as its randomness source. It starts in training mode.
func NewDropout(rate float64, rng *rand.Rand) *Dropout {
	return &Dropout{Rate: rate, rng: rng, train: true}
}

// SetTrain toggles between training (random drops) and evaluation
// (identity) behaviour.
func (d *Dropout) SetTrain(train bool) { d.train = train }

// Forward drops activations with probability Rate during training.
func (d *Dropout) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	if !d.train || d.Rate <= 0 {
		d.mask = d.mask[:0]
		return x, nil
	}
	keep := 1 - d.Rate
	if cap(d.mask) < len(x.Data) {
		d.mask = make([]float64, len(x.Data))
	}
	d.mask = d.mask[:len(x.Data)]
	out := tensor.New(x.Shape...)
	for i, v := range x.Data {
		if d.rng.Float64() < keep {
			d.mask[i] = 1 / keep
			out.Data[i] = v / keep
		} else {
			d.mask[i] = 0
		}
	}
	return out, nil
}

// Backward applies the cached mask to the gradient.
func (d *Dropout) Backward(dout *tensor.Tensor) (*tensor.Tensor, error) {
	if len(d.mask) == 0 {
		return dout, nil
	}
	if len(dout.Data) != len(d.mask) {
		return nil, fmt.Errorf("dropout: grad length %d, want %d", len(dout.Data), len(d.mask))
	}
	dx := tensor.New(dout.Shape...)
	for i, m := range d.mask {
		dx.Data[i] = dout.Data[i] * m
	}
	return dx, nil
}

// ForwardWS is the eval-mode forward: dropout is the identity at
// inference, regardless of the training flag.
func (d *Dropout) ForwardWS(x *tensor.Tensor, ws *Workspace) (*tensor.Tensor, error) {
	return x, nil
}

// Params returns nil; Dropout has no parameters.
func (d *Dropout) Params() []*Param { return nil }
