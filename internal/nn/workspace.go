package nn

import (
	"fmt"

	"safecross/internal/tensor"
)

// Workspace is a pool of scratch tensors for the eval-mode forward
// path. Layers obtain their column matrices and activation buffers
// from it instead of allocating, so a long-lived caller (one serving
// worker, one benchmark loop) reaches a steady state where a forward
// pass allocates nothing regardless of how many batches it runs.
//
// Ownership rules:
//
//   - A Workspace belongs to exactly one goroutine at a time. It does
//     no locking; concurrent use is a data race. The serving plane
//     gives each worker its own (see internal/serve).
//   - Buffers returned by Get stay valid until Reset. Reset recycles
//     every outstanding buffer at once, so a forward pass Gets freely
//     and its driver Resets between batches.
//   - Buffers are pooled by element count, not shape: a scratch tensor
//     is handed back reshaped to whatever was asked for, so one batch
//     size's buffers are reused verbatim and a smaller final batch
//     still hits the pool when counts coincide.
//   - Contents are arbitrary after Get. Kernels that accumulate or
//     skip positions (matmul, im2col padding) zero their destination
//     themselves; everything else overwrites fully.
type Workspace struct {
	free  map[int][]*tensor.Tensor
	inUse []*tensor.Tensor

	// Gets counts Get calls; Misses counts the ones that had to
	// allocate. After warm-up Misses stops growing — tests and the
	// serving stats use the pair to prove the pooled path is hot.
	Gets   int
	Misses int
}

// NewWorkspace returns an empty workspace.
func NewWorkspace() *Workspace {
	return &Workspace{free: make(map[int][]*tensor.Tensor)}
}

// Get returns a scratch tensor of the given shape, recycling a pooled
// buffer of the same element count when one is free. Contents are
// arbitrary.
func (w *Workspace) Get(shape ...int) *tensor.Tensor {
	w.Gets++
	n := tensor.Numel(shape)
	var t *tensor.Tensor
	if list := w.free[n]; len(list) > 0 {
		t = list[len(list)-1]
		list[len(list)-1] = nil
		w.free[n] = list[:len(list)-1]
		t.Shape = append(t.Shape[:0], shape...)
	} else {
		w.Misses++
		t = tensor.New(shape...)
	}
	w.inUse = append(w.inUse, t)
	return t
}

// Reset returns every outstanding scratch tensor to the pool. All
// buffers previously returned by Get become invalid for the caller.
func (w *Workspace) Reset() {
	for i, t := range w.inUse {
		w.free[len(t.Data)] = append(w.free[len(t.Data)], t)
		w.inUse[i] = nil
	}
	w.inUse = w.inUse[:0]
}

// WorkspaceLayer is implemented by layers with an allocation-
// disciplined, eval-only forward pass: scratch and output buffers come
// from ws, no training caches are written, and train-time behaviour
// (dropout) is the identity.
//
// ForwardWS additionally understands channel-major batched inputs:
// where Forward takes [C,...] a WorkspaceLayer also accepts [C,N,...]
// with the batch axis second, processing N samples in one pass (one
// im2col + one matmul for the conv layers). Rank disambiguates; a
// single-sample input behaves exactly like Forward minus the caches.
type WorkspaceLayer interface {
	ForwardWS(x *tensor.Tensor, ws *Workspace) (*tensor.Tensor, error)
}

// ForwardWS runs the chain like Forward, routing each layer through
// its workspace path when it has one. Layers without a ForwardWS fall
// back to Forward — correct for single-sample inputs, but batched
// inputs require every layer in the chain to be a WorkspaceLayer.
func (s *Sequential) ForwardWS(x *tensor.Tensor, ws *Workspace) (*tensor.Tensor, error) {
	var err error
	for i, l := range s.layers {
		if wl, ok := l.(WorkspaceLayer); ok {
			x, err = wl.ForwardWS(x, ws)
		} else {
			x, err = l.Forward(x)
		}
		if err != nil {
			return nil, fmt.Errorf("layer %d: %w", i, err)
		}
	}
	return x, nil
}

// ConcatChannelsWS concatenates two channel-major batched tensors
// along the channel (outermost) axis into a workspace buffer. Inputs
// must have identical shapes past the channel dim; ranks 4 ([C,T,H,W])
// and 5 ([C,N,T,H,W]) are accepted. Because channels are outermost,
// the result is the per-sample channel concatenation regardless of
// batch size.
func ConcatChannelsWS(ws *Workspace, a, b *tensor.Tensor) (*tensor.Tensor, error) {
	if a.Rank() != b.Rank() || a.Rank() < 2 {
		return nil, fmt.Errorf("nn: concat needs equal-rank inputs, got %v and %v", a.Shape, b.Shape)
	}
	for i := 1; i < a.Rank(); i++ {
		if a.Shape[i] != b.Shape[i] {
			return nil, fmt.Errorf("nn: concat dims differ at axis %d: %v vs %v", i, a.Shape, b.Shape)
		}
	}
	shape := append([]int{a.Shape[0] + b.Shape[0]}, a.Shape[1:]...)
	out := ws.Get(shape...)
	copy(out.Data, a.Data)
	copy(out.Data[len(a.Data):], b.Data)
	return out, nil
}
