package nn

import (
	"fmt"

	"safecross/internal/tensor"
)

// ConcatChannels4D concatenates two [C,T,H,W] tensors along the
// channel axis. The non-channel dimensions must match. SlowFast uses
// it to fuse the lateral fast-pathway features into the slow pathway.
func ConcatChannels4D(a, b *tensor.Tensor) (*tensor.Tensor, error) {
	if a.Rank() != 4 || b.Rank() != 4 {
		return nil, fmt.Errorf("nn: concat needs rank-4 inputs, got %v and %v", a.Shape, b.Shape)
	}
	for i := 1; i < 4; i++ {
		if a.Shape[i] != b.Shape[i] {
			return nil, fmt.Errorf("nn: concat dims differ at axis %d: %v vs %v", i, a.Shape, b.Shape)
		}
	}
	out := tensor.New(a.Shape[0]+b.Shape[0], a.Shape[1], a.Shape[2], a.Shape[3])
	copy(out.Data, a.Data)
	copy(out.Data[len(a.Data):], b.Data)
	return out, nil
}

// SplitChannels4D splits a [C,T,H,W] tensor into its first ca channels
// and the remainder — the adjoint of ConcatChannels4D, used in the
// backward pass of the lateral fusion.
func SplitChannels4D(x *tensor.Tensor, ca int) (*tensor.Tensor, *tensor.Tensor, error) {
	if x.Rank() != 4 {
		return nil, nil, fmt.Errorf("nn: split needs rank-4 input, got %v", x.Shape)
	}
	if ca <= 0 || ca >= x.Shape[0] {
		return nil, nil, fmt.Errorf("nn: split point %d out of range for %d channels", ca, x.Shape[0])
	}
	t, h, w := x.Shape[1], x.Shape[2], x.Shape[3]
	vol := t * h * w
	a := tensor.New(ca, t, h, w)
	b := tensor.New(x.Shape[0]-ca, t, h, w)
	copy(a.Data, x.Data[:ca*vol])
	copy(b.Data, x.Data[ca*vol:])
	return a, b, nil
}
