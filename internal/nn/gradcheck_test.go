package nn

import (
	"math"
	"math/rand"
	"testing"

	"safecross/internal/tensor"
)

// lossOf runs a forward pass and returns the weighted sum of the
// output, a scalar loss whose gradient with respect to the output is
// exactly the weight tensor.
func lossOf(t *testing.T, l Layer, x, wout *tensor.Tensor) float64 {
	t.Helper()
	out, err := l.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	s, err := tensor.Dot(out, wout)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// gradCheck verifies a layer's backward pass against central finite
// differences on both the input and every parameter.
func gradCheck(t *testing.T, l Layer, x *tensor.Tensor, outLen int, tol float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	wout := tensor.RandnTensor(rng, 1, outLen)

	// Analytic gradients.
	out, err := l.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != outLen {
		t.Fatalf("output length %d, want %d", out.Len(), outLen)
	}
	ZeroGrad(l.Params())
	dx, err := l.Backward(wout.MustReshape(out.Shape...))
	if err != nil {
		t.Fatal(err)
	}

	const eps = 1e-5
	// Input gradient.
	for i := range x.Data {
		orig := x.Data[i]
		x.Data[i] = orig + eps
		lp := lossOf(t, l, x, wout)
		x.Data[i] = orig - eps
		lm := lossOf(t, l, x, wout)
		x.Data[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-dx.Data[i]) > tol {
			t.Fatalf("input grad[%d]: analytic %v, numeric %v", i, dx.Data[i], num)
		}
	}
	// Parameter gradients.
	for _, p := range l.Params() {
		for i := range p.Value.Data {
			orig := p.Value.Data[i]
			p.Value.Data[i] = orig + eps
			lp := lossOf(t, l, x, wout)
			p.Value.Data[i] = orig - eps
			lm := lossOf(t, l, x, wout)
			p.Value.Data[i] = orig
			num := (lp - lm) / (2 * eps)
			if math.Abs(num-p.Grad.Data[i]) > tol {
				t.Fatalf("param %s grad[%d]: analytic %v, numeric %v", p.Name, i, p.Grad.Data[i], num)
			}
		}
	}
}

func TestGradCheckLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear("fc", 5, 3, rng)
	x := tensor.RandnTensor(rng, 1, 5)
	gradCheck(t, l, x, 3, 1e-6)
}

func TestGradCheckConv2D(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := NewConv2D("c", Conv2DConfig{InC: 2, OutC: 3, KH: 3, KW: 3, SH: 2, SW: 2, PH: 1, PW: 1}, rng)
	x := tensor.RandnTensor(rng, 1, 2, 6, 6)
	out := tensor.ConvOutSize(6, 3, 2, 1)
	gradCheck(t, l, x, 3*out*out, 1e-6)
}

func TestGradCheckConv3D(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	l := NewConv3D("c3", Conv3DConfig{
		InC: 1, OutC: 2, KT: 3, KH: 3, KW: 3,
		ST: 1, SH: 2, SW: 2, PT: 1, PH: 1, PW: 1,
	}, rng)
	x := tensor.RandnTensor(rng, 1, 1, 4, 6, 6)
	ot := tensor.ConvOutSize(4, 3, 1, 1)
	oh := tensor.ConvOutSize(6, 3, 2, 1)
	gradCheck(t, l, x, 2*ot*oh*oh, 1e-6)
}

func TestGradCheckReLU(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := tensor.RandnTensor(rng, 1, 12)
	// Nudge values away from 0 where ReLU is non-differentiable.
	for i, v := range x.Data {
		if math.Abs(v) < 0.05 {
			x.Data[i] = 0.1
		}
	}
	gradCheck(t, NewReLU(), x, 12, 1e-6)
}

func TestGradCheckLeakyReLU(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := tensor.RandnTensor(rng, 1, 12)
	for i, v := range x.Data {
		if math.Abs(v) < 0.05 {
			x.Data[i] = -0.1
		}
	}
	gradCheck(t, NewLeakyReLU(0.1), x, 12, 1e-6)
}

func TestGradCheckMaxPool2D(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := tensor.RandnTensor(rng, 1, 2, 6, 6)
	gradCheck(t, NewMaxPool2D(2, 2), x, 2*3*3, 1e-6)
}

func TestGradCheckGlobalAvgPool3D(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := tensor.RandnTensor(rng, 1, 3, 2, 4, 4)
	gradCheck(t, NewGlobalAvgPool3D(), x, 3, 1e-6)
}

func TestGradCheckTemporalAvgPool(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	x := tensor.RandnTensor(rng, 1, 2, 8, 3, 3)
	gradCheck(t, NewTemporalAvgPool(4), x, 2*2*3*3, 1e-6)
}

func TestGradCheckSequentialChain(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	net := NewSequential(
		NewConv2D("c1", Conv2DConfig{InC: 1, OutC: 2, KH: 3, KW: 3, SH: 1, SW: 1, PH: 1, PW: 1}, rng),
		NewReLU(),
		NewMaxPool2D(2, 2),
		NewFlatten(),
		NewLinear("fc", 2*3*3, 2, rng),
	)
	x := tensor.RandnTensor(rng, 1, 1, 6, 6)
	gradCheck(t, net, x, 2, 1e-5)
}

// TestGradCheckCrossEntropy verifies the loss gradient against finite
// differences through the full softmax cross-entropy.
func TestGradCheckCrossEntropy(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	logits := tensor.RandnTensor(rng, 1, 4)
	label := 2
	_, grad, err := SoftmaxCrossEntropy(logits, label)
	if err != nil {
		t.Fatal(err)
	}
	const eps = 1e-6
	for i := range logits.Data {
		orig := logits.Data[i]
		logits.Data[i] = orig + eps
		lp, _, _ := SoftmaxCrossEntropy(logits, label)
		logits.Data[i] = orig - eps
		lm, _, _ := SoftmaxCrossEntropy(logits, label)
		logits.Data[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-grad.Data[i]) > 1e-6 {
			t.Fatalf("loss grad[%d]: analytic %v, numeric %v", i, grad.Data[i], num)
		}
	}
}
