package nn

import (
	"encoding/gob"
	"fmt"
	"io"
)

// stateEntry is the serialized form of one parameter.
type stateEntry struct {
	Name  string
	Shape []int
	Data  []float64
}

// SaveState writes the named parameters to w in gob format. It is the
// on-disk weight format used by cmd/safecross-train and the model
// store in internal/safecross.
func SaveState(w io.Writer, params []*Param) error {
	entries := make([]stateEntry, 0, len(params))
	seen := make(map[string]bool, len(params))
	for _, p := range params {
		if seen[p.Name] {
			return fmt.Errorf("nn: duplicate parameter name %q", p.Name)
		}
		seen[p.Name] = true
		entries = append(entries, stateEntry{
			Name:  p.Name,
			Shape: append([]int(nil), p.Value.Shape...),
			Data:  append([]float64(nil), p.Value.Data...),
		})
	}
	if err := gob.NewEncoder(w).Encode(entries); err != nil {
		return fmt.Errorf("nn: encode state: %w", err)
	}
	return nil
}

// LoadState reads a state written by SaveState and copies values into
// the matching parameters by name. Every parameter in params must be
// present in the stream with a matching shape; extra entries in the
// stream are an error too, so that silently stale checkpoints are
// caught.
func LoadState(r io.Reader, params []*Param) error {
	var entries []stateEntry
	if err := gob.NewDecoder(r).Decode(&entries); err != nil {
		return fmt.Errorf("nn: decode state: %w", err)
	}
	byName := make(map[string]stateEntry, len(entries))
	for _, e := range entries {
		byName[e.Name] = e
	}
	if len(byName) != len(params) {
		return fmt.Errorf("nn: state has %d parameters, network has %d", len(byName), len(params))
	}
	for _, p := range params {
		e, ok := byName[p.Name]
		if !ok {
			return fmt.Errorf("nn: state missing parameter %q", p.Name)
		}
		if len(e.Data) != p.Value.Len() {
			return fmt.Errorf("nn: parameter %q has %d values in state, want %d", p.Name, len(e.Data), p.Value.Len())
		}
		copy(p.Value.Data, e.Data)
	}
	return nil
}
