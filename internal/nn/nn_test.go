package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"safecross/internal/tensor"
)

func TestParamCountAndZeroGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net := NewSequential(
		NewLinear("a", 4, 3, rng),
		NewReLU(),
		NewLinear("b", 3, 2, rng),
	)
	want := 4*3 + 3 + 3*2 + 2
	if got := ParamCount(net.Params()); got != want {
		t.Fatalf("ParamCount = %d, want %d", got, want)
	}
	for _, p := range net.Params() {
		p.Grad.Fill(5)
	}
	ZeroGrad(net.Params())
	for _, p := range net.Params() {
		if p.Grad.Sum() != 0 {
			t.Fatalf("ZeroGrad left %q non-zero", p.Name)
		}
	}
}

func TestCopyParams(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := NewLinear("fc", 3, 2, rng)
	b := NewLinear("fc", 3, 2, rng)
	if err := CopyParams(b.Params(), a.Params()); err != nil {
		t.Fatal(err)
	}
	for i, p := range a.Params() {
		q := b.Params()[i]
		for j := range p.Value.Data {
			if p.Value.Data[j] != q.Value.Data[j] {
				t.Fatalf("param %q not copied", p.Name)
			}
		}
	}
	c := NewLinear("fc", 4, 2, rng)
	if err := CopyParams(c.Params(), a.Params()); err == nil {
		t.Fatal("expected shape-mismatch error")
	}
}

func TestClipGradNorm(t *testing.T) {
	p := NewParam("w", tensor.New(2))
	p.Grad.Data[0] = 3
	p.Grad.Data[1] = 4
	norm := ClipGradNorm([]*Param{p}, 1)
	if math.Abs(norm-5) > 1e-12 {
		t.Fatalf("pre-clip norm = %v, want 5", norm)
	}
	if after := p.Grad.Norm2(); math.Abs(after-1) > 1e-12 {
		t.Fatalf("post-clip norm = %v, want 1", after)
	}
	// Disabled clipping leaves gradients alone.
	p.Grad.Data[0], p.Grad.Data[1] = 3, 4
	ClipGradNorm([]*Param{p}, 0)
	if p.Grad.Norm2() != 5 {
		t.Fatal("maxNorm<=0 must not clip")
	}
}

func TestDropoutTrainVsEval(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := NewDropout(0.5, rng)
	x := tensor.Full(1, 1000)

	out, err := d.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	zeros := 0
	for _, v := range out.Data {
		if v == 0 {
			zeros++
		}
	}
	if zeros < 350 || zeros > 650 {
		t.Fatalf("train-mode dropout zeroed %d/1000, want ≈500", zeros)
	}
	// Inverted dropout keeps the expectation: mean should be ≈1.
	if m := out.Mean(); math.Abs(m-1) > 0.15 {
		t.Fatalf("train-mode mean = %v, want ≈1", m)
	}

	d.SetTrain(false)
	out, err = d.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range out.Data {
		if v != 1 {
			t.Fatal("eval-mode dropout must be identity")
		}
	}
}

func TestSequentialSetTrainPropagates(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := NewDropout(0.9, rng)
	net := NewSequential(NewReLU(), d)
	net.SetTrain(false)
	x := tensor.Full(2, 10)
	out, err := net.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range out.Data {
		if v != 2 {
			t.Fatal("SetTrain(false) did not reach dropout")
		}
	}
}

func TestConcatSplitRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := tensor.RandnTensor(rng, 1, 2, 3, 4, 5)
	b := tensor.RandnTensor(rng, 1, 3, 3, 4, 5)
	cat, err := ConcatChannels4D(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if cat.Shape[0] != 5 {
		t.Fatalf("concat channels = %d, want 5", cat.Shape[0])
	}
	a2, b2, err := SplitChannels4D(cat, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Data {
		if a.Data[i] != a2.Data[i] {
			t.Fatal("split did not recover first part")
		}
	}
	for i := range b.Data {
		if b.Data[i] != b2.Data[i] {
			t.Fatal("split did not recover second part")
		}
	}
}

func TestConcatShapeErrors(t *testing.T) {
	a := tensor.New(2, 3, 4, 5)
	b := tensor.New(2, 3, 4, 6)
	if _, err := ConcatChannels4D(a, b); err == nil {
		t.Fatal("expected dim-mismatch error")
	}
	if _, _, err := SplitChannels4D(a, 2); err == nil {
		t.Fatal("expected split-point error")
	}
}

func TestStateSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	src := NewSequential(
		NewConv2D("c", Conv2DConfig{InC: 1, OutC: 2, KH: 3, KW: 3, PH: 1, PW: 1}, rng),
		NewFlatten(),
		NewLinear("fc", 2*4*4, 2, rng),
	)
	var buf bytes.Buffer
	if err := SaveState(&buf, src.Params()); err != nil {
		t.Fatal(err)
	}

	dst := NewSequential(
		NewConv2D("c", Conv2DConfig{InC: 1, OutC: 2, KH: 3, KW: 3, PH: 1, PW: 1}, rng),
		NewFlatten(),
		NewLinear("fc", 2*4*4, 2, rng),
	)
	if err := LoadState(&buf, dst.Params()); err != nil {
		t.Fatal(err)
	}
	x := tensor.RandnTensor(rng, 1, 1, 4, 4)
	y1, err := src.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	y2, err := dst.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range y1.Data {
		if y1.Data[i] != y2.Data[i] {
			t.Fatal("loaded network does not reproduce outputs")
		}
	}
}

func TestLoadStateRejectsMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	src := NewLinear("fc", 3, 2, rng)
	var buf bytes.Buffer
	if err := SaveState(&buf, src.Params()); err != nil {
		t.Fatal(err)
	}
	other := NewLinear("other", 3, 2, rng)
	if err := LoadState(&buf, other.Params()); err == nil {
		t.Fatal("expected missing-name error")
	}
	big := NewLinear("fc", 4, 2, rng)
	var buf2 bytes.Buffer
	if err := SaveState(&buf2, src.Params()); err != nil {
		t.Fatal(err)
	}
	if err := LoadState(&buf2, big.Params()); err == nil {
		t.Fatal("expected shape-mismatch error")
	}
}

func TestSaveStateRejectsDuplicateNames(t *testing.T) {
	p := NewParam("dup", tensor.New(1))
	q := NewParam("dup", tensor.New(1))
	var buf bytes.Buffer
	if err := SaveState(&buf, []*Param{p, q}); err == nil {
		t.Fatal("expected duplicate-name error")
	}
}

func TestConfusionMatrixMetrics(t *testing.T) {
	cm := NewConfusionMatrix(2)
	// Class 0: 9 right, 1 wrong. Class 1: 1 right, 1 wrong.
	for i := 0; i < 9; i++ {
		if err := cm.Add(0, 0); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd := func(truth, pred int) {
		t.Helper()
		if err := cm.Add(truth, pred); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(0, 1)
	mustAdd(1, 1)
	mustAdd(1, 0)
	if got := cm.Top1(); math.Abs(got-10.0/12) > 1e-12 {
		t.Fatalf("Top1 = %v, want %v", got, 10.0/12)
	}
	want := (0.9 + 0.5) / 2
	if got := cm.MeanClass(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("MeanClass = %v, want %v", got, want)
	}
	if cm.Total() != 12 {
		t.Fatalf("Total = %d, want 12", cm.Total())
	}
	if err := cm.Add(2, 0); err == nil {
		t.Fatal("expected range error")
	}
}

func TestCrossEntropyErrors(t *testing.T) {
	if _, _, err := SoftmaxCrossEntropy(tensor.New(2, 2), 0); err == nil {
		t.Fatal("expected rank error")
	}
	if _, _, err := SoftmaxCrossEntropy(tensor.New(3), 3); err == nil {
		t.Fatal("expected label-range error")
	}
}

// Property: cross-entropy loss is non-negative and its gradient sums
// to zero (softmax minus one-hot).
func TestPropertyCrossEntropy(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(6)
		logits := tensor.RandnTensor(rng, 2, k)
		label := rng.Intn(k)
		loss, grad, err := SoftmaxCrossEntropy(logits, label)
		if err != nil {
			return false
		}
		return loss >= 0 && math.Abs(grad.Sum()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestTrainingConvergesOnToyProblem trains a small MLP on a linearly
// separable 2-D problem and requires near-perfect accuracy, smoke-
// testing the full forward/backward/optimize loop.
func TestTrainingConvergesOnToyProblem(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	net := NewSequential(
		NewLinear("h", 2, 8, rng),
		NewReLU(),
		NewLinear("o", 8, 2, rng),
	)
	opt := NewAdam(0.05)

	sample := func() (*tensor.Tensor, int) {
		x := tensor.RandnTensor(rng, 1, 2)
		label := 0
		if x.Data[0]+x.Data[1] > 0 {
			label = 1
		}
		return x, label
	}

	for step := 0; step < 400; step++ {
		ZeroGrad(net.Params())
		x, label := sample()
		logits, err := net.Forward(x)
		if err != nil {
			t.Fatal(err)
		}
		_, dlogits, err := SoftmaxCrossEntropy(logits, label)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := net.Backward(dlogits); err != nil {
			t.Fatal(err)
		}
		if err := opt.Step(net.Params()); err != nil {
			t.Fatal(err)
		}
	}

	correct := 0
	const n = 200
	for i := 0; i < n; i++ {
		x, label := sample()
		logits, err := net.Forward(x)
		if err != nil {
			t.Fatal(err)
		}
		if Predict(logits) == label {
			correct++
		}
	}
	if acc := float64(correct) / n; acc < 0.93 {
		t.Fatalf("toy training accuracy = %v, want ≥0.93", acc)
	}
}

// TestSGDMomentumMatchesManualUpdate checks the SGD update rule on a
// single scalar parameter against a hand-computed trajectory.
func TestSGDMomentumMatchesManualUpdate(t *testing.T) {
	p := NewParam("w", tensor.MustFromSlice([]float64{1}, 1))
	opt := NewSGD(0.1, 0.9, 0)

	p.Grad.Data[0] = 1
	if err := opt.Step([]*Param{p}); err != nil {
		t.Fatal(err)
	}
	// v1 = 1, w = 1 - 0.1*1 = 0.9
	if math.Abs(p.Value.Data[0]-0.9) > 1e-12 {
		t.Fatalf("after step1 w = %v, want 0.9", p.Value.Data[0])
	}
	p.Grad.Data[0] = 1
	if err := opt.Step([]*Param{p}); err != nil {
		t.Fatal(err)
	}
	// v2 = 0.9*1 + 1 = 1.9, w = 0.9 - 0.19 = 0.71
	if math.Abs(p.Value.Data[0]-0.71) > 1e-12 {
		t.Fatalf("after step2 w = %v, want 0.71", p.Value.Data[0])
	}
}

// TestAdamReducesLossOnQuadratic checks Adam minimises a simple
// quadratic f(w) = (w-3)².
func TestAdamReducesLossOnQuadratic(t *testing.T) {
	p := NewParam("w", tensor.MustFromSlice([]float64{0}, 1))
	opt := NewAdam(0.1)
	for i := 0; i < 500; i++ {
		p.Grad.Data[0] = 2 * (p.Value.Data[0] - 3)
		if err := opt.Step([]*Param{p}); err != nil {
			t.Fatal(err)
		}
	}
	if math.Abs(p.Value.Data[0]-3) > 0.05 {
		t.Fatalf("Adam converged to %v, want ≈3", p.Value.Data[0])
	}
}

// TestWeightDecayShrinksWeights verifies L2 decay pulls an otherwise
// gradient-free parameter toward zero.
func TestWeightDecayShrinksWeights(t *testing.T) {
	p := NewParam("w", tensor.MustFromSlice([]float64{10}, 1))
	opt := NewSGD(0.1, 0, 0.5)
	for i := 0; i < 10; i++ {
		ZeroGrad([]*Param{p})
		if err := opt.Step([]*Param{p}); err != nil {
			t.Fatal(err)
		}
	}
	if math.Abs(p.Value.Data[0]) >= 10 {
		t.Fatalf("weight decay did not shrink weight: %v", p.Value.Data[0])
	}
}

func TestSoftmaxCrossEntropySmoothed(t *testing.T) {
	logits := tensor.MustFromSlice([]float64{2, -1, 0.5}, 3)
	lossPlain, gradPlain, err := SoftmaxCrossEntropy(logits, 0)
	if err != nil {
		t.Fatal(err)
	}
	lossSmooth, gradSmooth, err := SoftmaxCrossEntropySmoothed(logits, 0, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// Smoothing increases the loss for a confident correct prediction.
	if lossSmooth <= lossPlain {
		t.Fatalf("smoothed loss %v should exceed plain %v here", lossSmooth, lossPlain)
	}
	// Both gradients sum to zero (softmax minus a distribution).
	if math.Abs(gradPlain.Sum()) > 1e-9 || math.Abs(gradSmooth.Sum()) > 1e-9 {
		t.Fatal("loss gradients must sum to zero")
	}
	// eps=0 degenerates to the plain loss.
	l0, _, err := SoftmaxCrossEntropySmoothed(logits, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if l0 != lossPlain {
		t.Fatalf("eps=0 loss %v != plain %v", l0, lossPlain)
	}
	if _, _, err := SoftmaxCrossEntropySmoothed(logits, 0, 1); err == nil {
		t.Fatal("expected eps-range error")
	}
	if _, _, err := SoftmaxCrossEntropySmoothed(logits, 5, 0.1); err == nil {
		t.Fatal("expected label-range error")
	}
}

// TestSmoothedLossGradientFiniteDiff validates the smoothed loss
// gradient numerically.
func TestSmoothedLossGradientFiniteDiff(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	logits := tensor.RandnTensor(rng, 1, 4)
	const eps = 1e-6
	_, grad, err := SoftmaxCrossEntropySmoothed(logits, 2, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range logits.Data {
		orig := logits.Data[i]
		logits.Data[i] = orig + eps
		lp, _, _ := SoftmaxCrossEntropySmoothed(logits, 2, 0.2)
		logits.Data[i] = orig - eps
		lm, _, _ := SoftmaxCrossEntropySmoothed(logits, 2, 0.2)
		logits.Data[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-grad.Data[i]) > 1e-6 {
			t.Fatalf("grad[%d]: analytic %v numeric %v", i, grad.Data[i], num)
		}
	}
}
