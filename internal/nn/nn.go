// Package nn implements the small neural-network stack that SafeCross
// trains its video classifiers with: layers with explicit
// forward/backward passes, softmax cross-entropy loss, SGD and Adam
// optimizers, and gob-based weight serialization.
//
// The design is layer-based backpropagation rather than a general
// autograd graph: each Layer caches what its backward pass needs
// during Forward and accumulates parameter gradients during Backward.
// Models that are not simple chains (e.g. the two-pathway SlowFast
// network in internal/video) compose layers manually.
//
// All parameters are identified by name so that weights can be copied
// between structurally identical networks — the mechanism MAML
// (internal/fewshot) uses for its inner-loop adaptation.
package nn

import (
	"fmt"
	"math"

	"safecross/internal/tensor"
)

// Param is a trainable parameter: a value tensor and its accumulated
// gradient. Gradients accumulate across Backward calls until ZeroGrad.
type Param struct {
	// Name identifies the parameter within its network, e.g.
	// "fast.conv1.weight". Names must be unique per network for
	// state-dict round trips.
	Name  string
	Value *tensor.Tensor
	Grad  *tensor.Tensor
}

// NewParam allocates a named parameter with a zero gradient of the
// same shape as value.
func NewParam(name string, value *tensor.Tensor) *Param {
	return &Param{
		Name:  name,
		Value: value,
		Grad:  tensor.New(value.Shape...),
	}
}

// Layer is a differentiable computation stage. Forward must be called
// before Backward; Backward consumes the gradient of the loss with
// respect to the layer output and returns the gradient with respect to
// the layer input, accumulating parameter gradients along the way.
type Layer interface {
	Forward(x *tensor.Tensor) (*tensor.Tensor, error)
	Backward(dout *tensor.Tensor) (*tensor.Tensor, error)
	Params() []*Param
}

// TrainAware is implemented by layers whose behaviour differs between
// training and evaluation (e.g. Dropout).
type TrainAware interface {
	SetTrain(train bool)
}

// Sequential chains layers, feeding each layer's output to the next.
type Sequential struct {
	layers []Layer
}

var _ Layer = (*Sequential)(nil)

// NewSequential builds a chain from the given layers.
func NewSequential(layers ...Layer) *Sequential {
	return &Sequential{layers: layers}
}

// Append adds layers to the end of the chain.
func (s *Sequential) Append(layers ...Layer) { s.layers = append(s.layers, layers...) }

// Len returns the number of layers in the chain.
func (s *Sequential) Len() int { return len(s.layers) }

// Forward runs the chain front to back.
func (s *Sequential) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	var err error
	for i, l := range s.layers {
		if x, err = l.Forward(x); err != nil {
			return nil, fmt.Errorf("layer %d: %w", i, err)
		}
	}
	return x, nil
}

// Backward runs the chain back to front.
func (s *Sequential) Backward(dout *tensor.Tensor) (*tensor.Tensor, error) {
	var err error
	for i := len(s.layers) - 1; i >= 0; i-- {
		if dout, err = s.layers[i].Backward(dout); err != nil {
			return nil, fmt.Errorf("layer %d: %w", i, err)
		}
	}
	return dout, nil
}

// Params returns the concatenated parameters of all layers.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// SetTrain propagates the training flag to all train-aware layers.
func (s *Sequential) SetTrain(train bool) {
	for _, l := range s.layers {
		if ta, ok := l.(TrainAware); ok {
			ta.SetTrain(train)
		}
	}
}

// ZeroGrad clears the gradients of all given parameters.
func ZeroGrad(params []*Param) {
	for _, p := range params {
		p.Grad.Zero()
	}
}

// ScaleGrads multiplies all gradients by s; used to average gradients
// accumulated over a minibatch.
func ScaleGrads(params []*Param, s float64) {
	for _, p := range params {
		p.Grad.Scale(s)
	}
}

// ClipGradNorm rescales gradients so their global L2 norm does not
// exceed maxNorm, and returns the pre-clip norm. A non-positive
// maxNorm disables clipping.
func ClipGradNorm(params []*Param, maxNorm float64) float64 {
	total := 0.0
	for _, p := range params {
		n := p.Grad.Norm2()
		total += n * n
	}
	norm := math.Sqrt(total)
	if maxNorm > 0 && norm > maxNorm {
		scale := maxNorm / norm
		for _, p := range params {
			p.Grad.Scale(scale)
		}
	}
	return norm
}

// ParamCount returns the total number of scalar weights across params.
func ParamCount(params []*Param) int {
	n := 0
	for _, p := range params {
		n += p.Value.Len()
	}
	return n
}

// CopyParams copies values from src into dst, matching by position.
// The parameter lists must come from structurally identical networks.
func CopyParams(dst, src []*Param) error {
	if len(dst) != len(src) {
		return fmt.Errorf("nn: param count mismatch %d vs %d", len(dst), len(src))
	}
	for i, d := range dst {
		if err := d.Value.CopyFrom(src[i].Value); err != nil {
			return fmt.Errorf("nn: param %q: %w", d.Name, err)
		}
	}
	return nil
}
