package nn

import (
	"fmt"
	"math"

	"safecross/internal/tensor"
)

// SoftmaxCrossEntropy computes the cross-entropy loss of rank-1 logits
// against an integer class label, returning the loss and the gradient
// of the loss with respect to the logits (softmax(x) - onehot(label)).
func SoftmaxCrossEntropy(logits *tensor.Tensor, label int) (float64, *tensor.Tensor, error) {
	if logits.Rank() != 1 {
		return 0, nil, fmt.Errorf("nn: cross-entropy needs rank-1 logits, got %v", logits.Shape)
	}
	k := logits.Len()
	if label < 0 || label >= k {
		return 0, nil, fmt.Errorf("nn: label %d out of range [0,%d)", label, k)
	}
	probs := tensor.Softmax(logits)
	p := probs.Data[label]
	// Clamp to avoid -Inf on a (numerically) zero probability.
	if p < 1e-300 {
		p = 1e-300
	}
	loss := -math.Log(p)
	grad := probs.Clone()
	grad.Data[label] -= 1
	return loss, grad, nil
}

// SoftmaxCrossEntropySmoothed is cross-entropy against a
// label-smoothed target: the true class gets probability 1−eps and
// the remaining eps spreads uniformly. Smoothing regularises the
// small video classifiers against the over-confident saturation a
// two-class task invites.
func SoftmaxCrossEntropySmoothed(logits *tensor.Tensor, label int, eps float64) (float64, *tensor.Tensor, error) {
	if eps < 0 || eps >= 1 {
		return 0, nil, fmt.Errorf("nn: label smoothing %v outside [0,1)", eps)
	}
	if eps == 0 {
		return SoftmaxCrossEntropy(logits, label)
	}
	if logits.Rank() != 1 {
		return 0, nil, fmt.Errorf("nn: cross-entropy needs rank-1 logits, got %v", logits.Shape)
	}
	k := logits.Len()
	if label < 0 || label >= k {
		return 0, nil, fmt.Errorf("nn: label %d out of range [0,%d)", label, k)
	}
	probs := tensor.Softmax(logits)
	uniform := eps / float64(k)
	loss := 0.0
	grad := probs.Clone()
	for i := 0; i < k; i++ {
		target := uniform
		if i == label {
			target += 1 - eps
		}
		p := probs.Data[i]
		if p < 1e-300 {
			p = 1e-300
		}
		loss -= target * math.Log(p)
		grad.Data[i] -= target
	}
	return loss, grad, nil
}

// Predict returns the argmax class of rank-1 logits.
func Predict(logits *tensor.Tensor) int { return logits.ArgMax() }

// ConfusionMatrix accumulates per-class prediction counts; row =
// ground truth, column = prediction. It backs the Top-1 and
// mean-class-accuracy metrics the paper reports (Tables III–V).
type ConfusionMatrix struct {
	k      int
	counts []int
}

// NewConfusionMatrix creates a k-class confusion matrix.
func NewConfusionMatrix(k int) *ConfusionMatrix {
	return &ConfusionMatrix{k: k, counts: make([]int, k*k)}
}

// Add records one (truth, prediction) observation.
func (c *ConfusionMatrix) Add(truth, pred int) error {
	if truth < 0 || truth >= c.k || pred < 0 || pred >= c.k {
		return fmt.Errorf("nn: confusion index (%d,%d) out of range for k=%d", truth, pred, c.k)
	}
	c.counts[truth*c.k+pred]++
	return nil
}

// Count returns the number of observations with the given truth and
// prediction.
func (c *ConfusionMatrix) Count(truth, pred int) int { return c.counts[truth*c.k+pred] }

// Total returns the number of recorded observations.
func (c *ConfusionMatrix) Total() int {
	n := 0
	for _, v := range c.counts {
		n += v
	}
	return n
}

// Top1 returns overall accuracy: correct / total. It returns 0 for an
// empty matrix.
func (c *ConfusionMatrix) Top1() float64 {
	total, correct := 0, 0
	for i := 0; i < c.k; i++ {
		for j := 0; j < c.k; j++ {
			n := c.counts[i*c.k+j]
			total += n
			if i == j {
				correct += n
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// MeanClass returns the mean of per-class recalls, the
// "Mean_class_acc" metric in the paper. Classes with no examples are
// skipped.
func (c *ConfusionMatrix) MeanClass() float64 {
	sum, classes := 0.0, 0
	for i := 0; i < c.k; i++ {
		rowTotal := 0
		for j := 0; j < c.k; j++ {
			rowTotal += c.counts[i*c.k+j]
		}
		if rowTotal == 0 {
			continue
		}
		sum += float64(c.counts[i*c.k+i]) / float64(rowTotal)
		classes++
	}
	if classes == 0 {
		return 0
	}
	return sum / float64(classes)
}
