package nn

import (
	"math/rand"
	"testing"

	"safecross/internal/tensor"
)

func TestWorkspaceReusesBuffersByCount(t *testing.T) {
	ws := NewWorkspace()
	a := ws.Get(3, 4)
	b := ws.Get(2, 6) // same element count, distinct buffer while a is live
	if &a.Data[0] == &b.Data[0] {
		t.Fatal("two live Gets shared one buffer")
	}
	ws.Reset()
	c := ws.Get(12)
	if &c.Data[0] != &a.Data[0] && &c.Data[0] != &b.Data[0] {
		t.Fatal("Get after Reset did not recycle a pooled buffer")
	}
	if c.Rank() != 1 || c.Shape[0] != 12 {
		t.Fatalf("recycled buffer shape %v, want [12]", c.Shape)
	}
	if ws.Misses != 2 {
		t.Fatalf("misses = %d, want 2 (third Get must hit the pool)", ws.Misses)
	}
}

func TestWorkspaceMissesStopGrowingAtSteadyState(t *testing.T) {
	ws := NewWorkspace()
	round := func() {
		ws.Get(4, 7)
		ws.Get(28)
		ws.Get(3, 3)
		ws.Reset()
	}
	round()
	warm := ws.Misses
	for i := 0; i < 5; i++ {
		round()
	}
	if ws.Misses != warm {
		t.Fatalf("misses grew at steady state: %d -> %d", warm, ws.Misses)
	}
}

// TestConvDropsColumnCacheInEvalMode is the regression test for the
// memory-pinning bug: eval-mode conv forwards used to retain their
// im2col column matrix (the largest allocation of the pass) after
// every call, pinning heap past the serving plane's WorkerMemory
// budget. Eval mode must not retain it; train mode still must, for
// Backward.
func TestConvDropsColumnCacheInEvalMode(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c2 := NewConv2D("t.c2", Conv2DConfig{InC: 1, OutC: 2, KH: 3, KW: 3, SH: 1, SW: 1, PH: 1, PW: 1}, rng)
	c3 := NewConv3D("t.c3", Conv3DConfig{InC: 1, OutC: 2, KT: 3, KH: 3, KW: 3, ST: 1, SH: 1, SW: 1, PT: 1, PH: 1, PW: 1}, rng)
	x2 := tensor.RandnTensor(rng, 1, 1, 6, 6)
	x3 := tensor.RandnTensor(rng, 1, 1, 4, 6, 6)

	// Train mode (the default) keeps the cache for Backward.
	if _, err := c2.Forward(x2); err != nil {
		t.Fatal(err)
	}
	if c2.cacheCols == nil {
		t.Fatal("train-mode Conv2D forward must retain cacheCols for Backward")
	}
	if _, err := c3.Forward(x3); err != nil {
		t.Fatal(err)
	}
	if c3.cacheCols == nil {
		t.Fatal("train-mode Conv3D forward must retain cacheCols for Backward")
	}

	// Switching to eval drops the pinned cache immediately…
	c2.SetTrain(false)
	c3.SetTrain(false)
	if c2.cacheCols != nil || c3.cacheCols != nil {
		t.Fatal("SetTrain(false) must release the retained column cache")
	}
	// …and eval-mode forwards never re-pin it.
	if _, err := c2.Forward(x2); err != nil {
		t.Fatal(err)
	}
	if c2.cacheCols != nil {
		t.Fatal("eval-mode Conv2D forward retained cacheCols")
	}
	if _, err := c3.Forward(x3); err != nil {
		t.Fatal(err)
	}
	if c3.cacheCols != nil {
		t.Fatal("eval-mode Conv3D forward retained cacheCols")
	}

	// Backward after an eval forward is a usage error, not a crash.
	if _, err := c2.Backward(tensor.New(2, 6, 6)); err == nil {
		t.Fatal("Conv2D Backward after eval forward must fail")
	}

	// Back in train mode the cache returns and Backward works again.
	c2.SetTrain(true)
	if _, err := c2.Forward(x2); err != nil {
		t.Fatal(err)
	}
	if c2.cacheCols == nil {
		t.Fatal("returning to train mode must restore caching")
	}
	if _, err := c2.Backward(tensor.New(2, 6, 6)); err != nil {
		t.Fatal(err)
	}
}

// TestSequentialForwardWSMatchesForward checks that the workspace path
// of a mixed single-sample chain produces bit-identical outputs to the
// allocating eval path.
func TestSequentialForwardWSMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	net := NewSequential(
		NewConv2D("s.c1", Conv2DConfig{InC: 1, OutC: 4, KH: 3, KW: 3, SH: 2, SW: 2, PH: 1, PW: 1}, rng),
		NewReLU(),
		NewFlatten(),
		NewLinear("s.fc", 4*3*3, 3, rng),
	)
	net.SetTrain(false)
	x := tensor.RandnTensor(rng, 1, 1, 6, 6)
	want, err := net.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	ws := NewWorkspace()
	got, err := net.ForwardWS(x, ws)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Data) != len(want.Data) {
		t.Fatalf("ForwardWS output len %d, want %d", len(got.Data), len(want.Data))
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("element %d: ForwardWS %v != Forward %v", i, got.Data[i], want.Data[i])
		}
	}
}
