package gpusim

import (
	"testing"
	"time"
)

func TestConfigValidation(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig()
	bad.TransferBandwidth = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("expected bandwidth error")
	}
	bad = DefaultConfig()
	bad.MemoryBytes = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("expected memory error")
	}
	if _, err := NewDevice(bad); err == nil {
		t.Fatal("NewDevice must validate")
	}
}

func TestAllocFreeAccounting(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MemoryBytes = 100
	d, err := NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Alloc(60); err != nil {
		t.Fatal(err)
	}
	if err := d.Alloc(50); err == nil {
		t.Fatal("expected OOM")
	}
	if err := d.Alloc(-1); err == nil {
		t.Fatal("expected negative-alloc error")
	}
	if err := d.Free(70); err == nil {
		t.Fatal("expected over-free error")
	}
	if err := d.Free(60); err != nil {
		t.Fatal(err)
	}
	if d.Allocated() != 0 {
		t.Fatalf("allocated = %d, want 0", d.Allocated())
	}
}

func TestCapacityAndFits(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MemoryBytes = 100
	d, err := NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d.Capacity() != 100 {
		t.Fatalf("capacity = %d, want 100", d.Capacity())
	}
	if !d.Fits(100) {
		t.Fatal("full-capacity allocation must fit on an empty device")
	}
	if d.Fits(-1) {
		t.Fatal("negative allocation must not fit")
	}
	if err := d.Alloc(60); err != nil {
		t.Fatal(err)
	}
	if d.Fits(41) {
		t.Fatal("41 bytes must not fit with 60 of 100 allocated")
	}
	if !d.Fits(40) {
		t.Fatal("40 bytes must fit with 60 of 100 allocated")
	}
}

func TestTransferTiming(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TransferBandwidth = 1e9 // 1 GB/s for round numbers
	d, err := NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	start, done := d.TransferAt(0, 1e6) // 1 MB at 1 GB/s = 1 ms
	if start != 0 {
		t.Fatalf("start = %v, want 0", start)
	}
	if done != time.Millisecond {
		t.Fatalf("done = %v, want 1ms", done)
	}
	// Copy engine is serial: a second transfer queues behind the
	// first even if requested earlier.
	start2, done2 := d.TransferAt(0, 1e6)
	if start2 != time.Millisecond || done2 != 2*time.Millisecond {
		t.Fatalf("second transfer %v→%v, want 1ms→2ms", start2, done2)
	}
}

func TestComputeTimingAndOverheads(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ComputeThroughput = 1e12
	cfg.KernelOverhead = 10 * time.Microsecond
	d, err := NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, done := d.ComputeAt(0, 1e9, 2) // 1 GFLOP at 1 TFLOP/s = 1ms + 20µs
	want := time.Millisecond + 20*time.Microsecond
	if done != want {
		t.Fatalf("done = %v, want %v", done, want)
	}
	// Compute engine honours the ready time.
	start2, _ := d.ComputeAt(5*time.Millisecond, 1e9, 0)
	if start2 != 5*time.Millisecond {
		t.Fatalf("start = %v, want 5ms", start2)
	}
}

func TestEnginesAreIndependent(t *testing.T) {
	d, err := NewDevice(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	_, tDone := d.TransferAt(0, 1<<20)
	cStart, _ := d.ComputeAt(0, 1e6, 1)
	if cStart != 0 {
		t.Fatalf("compute should not wait for copy engine, started at %v (transfer done %v)", cStart, tDone)
	}
}

func TestResetClearsState(t *testing.T) {
	d, err := NewDevice(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Alloc(1 << 20); err != nil {
		t.Fatal(err)
	}
	d.TransferAt(0, 1<<24)
	d.ComputeAt(0, 1e9, 1)
	d.Reset()
	if d.Allocated() != 0 {
		t.Fatal("Reset must free memory")
	}
	start, _ := d.TransferAt(0, 1)
	if start != 0 {
		t.Fatal("Reset must clear the copy engine timeline")
	}
	cs, _ := d.ComputeAt(0, 1, 0)
	if cs != 0 {
		t.Fatal("Reset must clear the compute engine timeline")
	}
}

func TestColdPathDurations(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ColdLoadBandwidth = 1e8 // 100 MB/s
	cfg.ColdKernelInit = time.Millisecond
	d, err := NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.ColdLoadDuration(1e8); got != time.Second {
		t.Fatalf("cold load = %v, want 1s", got)
	}
	if got := d.ColdKernelInitDuration(10, 2); got != 20*time.Millisecond {
		t.Fatalf("cold kernel init = %v, want 20ms", got)
	}
	if d.ContextInitDuration() != cfg.ContextInit {
		t.Fatal("context init duration mismatch")
	}
}

func TestSyncAtAdvancesComputeEngine(t *testing.T) {
	cfg := DefaultConfig()
	cfg.GroupSync = time.Millisecond
	d, err := NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := d.SyncAt(2 * time.Millisecond)
	if done != 3*time.Millisecond {
		t.Fatalf("sync done = %v, want 3ms", done)
	}
	start, _ := d.ComputeAt(0, 0, 0)
	if start != 3*time.Millisecond {
		t.Fatalf("compute after sync started at %v, want 3ms", start)
	}
}

func TestInferAtAmortisesKernelOverhead(t *testing.T) {
	cfg := DefaultConfig()
	d, err := NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const flops, kernels, batch = 1e9, 100, 8

	// Unbatched: batch separate launches, each paying kernel overhead.
	var unbatched time.Duration
	for i := 0; i < batch; i++ {
		_, done := d.InferAt(d.Now(), flops, kernels, 1)
		unbatched = done
	}
	d.Reset()
	_, batched := d.InferAt(0, flops, kernels, batch)

	saved := time.Duration(batch-1) * time.Duration(kernels) * cfg.KernelOverhead
	if got := unbatched - batched; got != saved {
		t.Fatalf("batching saved %v, want exactly the %v of amortised kernel launches", got, saved)
	}
	if batched <= 0 {
		t.Fatal("batched inference must take virtual time")
	}
}

func TestInferAtClampsBatch(t *testing.T) {
	d, err := NewDevice(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	_, a := d.InferAt(0, 1e9, 10, 0)
	d.Reset()
	_, b := d.InferAt(0, 1e9, 10, 1)
	if a != b {
		t.Fatalf("batch 0 must clamp to 1: %v vs %v", a, b)
	}
}
