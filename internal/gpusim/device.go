// Package gpusim is a discrete-event simulator of an inference
// accelerator, the substrate the PipeSwitch reproduction
// (internal/pipeswitch) runs on. It models the quantities that
// dominate model-switching latency on a real GPU: a DMA copy engine
// with finite bandwidth, a compute engine with finite throughput,
// kernel-launch and group-synchronisation overheads, the multi-second
// context-initialisation + framework cold-load path that makes
// stop-and-start switching slow, and a finite memory pool.
//
// Time is virtual: every operation is scheduled on an engine timeline
// and returns completion instants, so experiments are deterministic
// and independent of the host machine.
package gpusim

import (
	"fmt"
	"time"
)

// DeviceConfig holds the performance model of the simulated
// accelerator. The defaults (DefaultConfig) are calibrated to a
// single RTX-2080-Ti-class card driven through PyTorch, the paper's
// testbed, with model byte sizes scaled as documented in DESIGN.md.
type DeviceConfig struct {
	// TransferBandwidth is pinned-memory DMA bandwidth in bytes/s
	// (PCIe 3.0 x16 effective).
	TransferBandwidth float64
	// ColdLoadBandwidth is the end-to-end bandwidth of the
	// stop-and-start load path: reading pageable weights, framework
	// deserialisation, and first-touch staging. Much slower than DMA.
	ColdLoadBandwidth float64
	// ComputeThroughput is sustained FLOP/s.
	ComputeThroughput float64
	// ContextInit is the cost of creating a CUDA context and loading
	// the framework's GPU libraries, paid on every stop-and-start
	// switch (the paper attributes the bulk of Table VI's seconds to
	// it).
	ContextInit time.Duration
	// KernelOverhead is the launch overhead per kernel (per layer).
	KernelOverhead time.Duration
	// ColdKernelInit is the one-time per-layer initialisation a cold
	// process pays (cuDNN algorithm selection, module JIT).
	ColdKernelInit time.Duration
	// GroupSync is the synchronisation cost between a transferred
	// group and the computation waiting on it (the "second cost" the
	// paper's Sec. III-E discusses).
	GroupSync time.Duration
	// MemoryBytes is device memory capacity.
	MemoryBytes int64
}

// DefaultConfig returns the calibrated RTX-2080-Ti-class model.
func DefaultConfig() DeviceConfig {
	return DeviceConfig{
		TransferBandwidth: 12e9,
		ColdLoadBandwidth: 0.15e9,
		ComputeThroughput: 11e12,
		ContextInit:       2900 * time.Millisecond,
		KernelOverhead:    4 * time.Microsecond,
		ColdKernelInit:    5500 * time.Microsecond,
		GroupSync:         120 * time.Microsecond,
		MemoryBytes:       11 << 30,
	}
}

// Validate checks the configuration for usability.
func (c DeviceConfig) Validate() error {
	if c.TransferBandwidth <= 0 || c.ColdLoadBandwidth <= 0 || c.ComputeThroughput <= 0 {
		return fmt.Errorf("gpusim: bandwidths and throughput must be positive: %+v", c)
	}
	if c.MemoryBytes <= 0 {
		return fmt.Errorf("gpusim: memory capacity must be positive")
	}
	return nil
}

// Device is a simulated accelerator with independent copy and compute
// engine timelines.
type Device struct {
	cfg DeviceConfig

	copyFree    time.Duration
	computeFree time.Duration
	allocated   int64
}

// NewDevice creates a device, validating the configuration.
func NewDevice(cfg DeviceConfig) (*Device, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Device{cfg: cfg}, nil
}

// Config returns the device's performance model.
func (d *Device) Config() DeviceConfig { return d.cfg }

// Reset clears both engine timelines and frees all memory, as if the
// device were idle at virtual time zero.
func (d *Device) Reset() {
	d.copyFree = 0
	d.computeFree = 0
	d.allocated = 0
}

// Allocated returns the bytes currently allocated on the device.
func (d *Device) Allocated() int64 { return d.allocated }

// Capacity returns the device's memory budget in bytes.
func (d *Device) Capacity() int64 { return d.cfg.MemoryBytes }

// Fits reports whether an allocation of the given size would succeed
// right now. Residency managers use it to decide how much to evict
// before loading a model, instead of discovering the shortfall as an
// Alloc error mid-switch.
func (d *Device) Fits(bytes int64) bool {
	return bytes >= 0 && d.allocated+bytes <= d.cfg.MemoryBytes
}

// Now returns the instant at which both engines are free — the
// earliest time a new request submitted to an idle device can start.
// Warm-server switch latencies are measured relative to it.
func (d *Device) Now() time.Duration { return maxDuration(d.copyFree, d.computeFree) }

// Alloc reserves device memory, failing when capacity is exceeded.
func (d *Device) Alloc(bytes int64) error {
	if bytes < 0 {
		return fmt.Errorf("gpusim: negative allocation %d", bytes)
	}
	if d.allocated+bytes > d.cfg.MemoryBytes {
		return fmt.Errorf("gpusim: out of memory: %d + %d > %d", d.allocated, bytes, d.cfg.MemoryBytes)
	}
	d.allocated += bytes
	return nil
}

// Free releases device memory.
func (d *Device) Free(bytes int64) error {
	if bytes < 0 || bytes > d.allocated {
		return fmt.Errorf("gpusim: bad free of %d (allocated %d)", bytes, d.allocated)
	}
	d.allocated -= bytes
	return nil
}

// durationFor converts a byte count and bandwidth into virtual time.
func durationFor(bytes int64, bandwidth float64) time.Duration {
	return time.Duration(float64(bytes) / bandwidth * float64(time.Second))
}

// TransferAt schedules a pinned-memory DMA of the given size on the
// copy engine, no earlier than ready, and returns its start and
// completion instants.
func (d *Device) TransferAt(ready time.Duration, bytes int64) (start, done time.Duration) {
	start = maxDuration(ready, d.copyFree)
	done = start + durationFor(bytes, d.cfg.TransferBandwidth)
	d.copyFree = done
	return start, done
}

// ComputeAt schedules kernels totalling the given FLOPs across the
// given kernel count on the compute engine, no earlier than ready.
func (d *Device) ComputeAt(ready time.Duration, flops float64, kernels int) (start, done time.Duration) {
	start = maxDuration(ready, d.computeFree)
	work := time.Duration(flops / d.cfg.ComputeThroughput * float64(time.Second))
	work += time.Duration(kernels) * d.cfg.KernelOverhead
	done = start + work
	d.computeFree = done
	return start, done
}

// InferAt schedules one batched inference on the compute engine, no
// earlier than ready: FLOPs scale linearly with the batch size, but
// the per-kernel launch overhead is paid once per kernel regardless
// of how many clips share the launch. This amortisation is the
// dynamic-batching win an inference server harvests from a GPU.
func (d *Device) InferAt(ready time.Duration, flopsPerClip float64, kernels, batch int) (start, done time.Duration) {
	if batch < 1 {
		batch = 1
	}
	return d.ComputeAt(ready, flopsPerClip*float64(batch), kernels)
}

// SyncAt models a group-boundary synchronisation on the compute
// engine timeline.
func (d *Device) SyncAt(ready time.Duration) time.Duration {
	start := maxDuration(ready, d.computeFree)
	done := start + d.cfg.GroupSync
	d.computeFree = done
	return done
}

// ColdLoadDuration returns the time a cold process needs to read and
// deserialise the given bytes before any DMA can start.
func (d *Device) ColdLoadDuration(bytes int64) time.Duration {
	return durationFor(bytes, d.cfg.ColdLoadBandwidth)
}

// ContextInitDuration returns the context-creation cost.
func (d *Device) ContextInitDuration() time.Duration { return d.cfg.ContextInit }

// ColdKernelInitDuration returns the per-layer cold initialisation
// cost multiplied by the layer count and a model-specific scale
// (3-D convolution layers autotune longer than 2-D ones).
func (d *Device) ColdKernelInitDuration(layers int, scale float64) time.Duration {
	return time.Duration(float64(layers) * scale * float64(d.cfg.ColdKernelInit))
}

func maxDuration(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
