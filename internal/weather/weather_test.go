package weather

import (
	"testing"

	"safecross/internal/sim"
	"safecross/internal/vision"
)

func fitDetector(t *testing.T) *Detector {
	t.Helper()
	det, err := FitFromSim(20, 1)
	if err != nil {
		t.Fatal(err)
	}
	return det
}

func TestExtractFeatures(t *testing.T) {
	im := vision.NewImage(10, 10)
	im.Fill(0.5)
	f := Extract(im)
	if f.Mean != 0.5 {
		t.Fatalf("mean = %v, want 0.5", f.Mean)
	}
	if f.Noise != 0 {
		t.Fatalf("flat image noise = %v, want 0", f.Noise)
	}
	if f.Speckle != 0 {
		t.Fatalf("speckle = %v, want 0", f.Speckle)
	}
	im.Set(5, 5, 1)
	f = Extract(im)
	if f.Speckle != 0.01 {
		t.Fatalf("speckle = %v, want 0.01", f.Speckle)
	}
	if f.Noise <= 0 {
		t.Fatal("speckled image must have noise energy")
	}
	// Empty image does not panic.
	if got := Extract(vision.NewImage(0, 0)); got.Mean != 0 {
		t.Fatalf("empty image features = %+v", got)
	}
}

func TestFitValidation(t *testing.T) {
	if _, err := Fit(nil); err == nil {
		t.Fatal("expected no-samples error")
	}
	if _, err := Fit(map[sim.Weather][]*vision.Image{sim.Day: nil}); err == nil {
		t.Fatal("expected empty-class error")
	}
	if _, err := FitFromSim(0, 1); err == nil {
		t.Fatal("expected frames error")
	}
}

// TestClassifyFreshFrames fits on one seed and classifies frames from
// unseen seeds; accuracy must be high for all three scenes.
func TestClassifyFreshFrames(t *testing.T) {
	det := fitDetector(t)
	for _, w := range sim.AllWeathers() {
		world := sim.NewWorld(sim.Config{Weather: w, Seed: 555, TurnerEnabled: true})
		frames := world.RunFrames(30)
		correct := 0
		for _, fr := range frames {
			if det.Classify(fr) == w {
				correct++
			}
		}
		if acc := float64(correct) / float64(len(frames)); acc < 0.8 {
			t.Fatalf("%v classification accuracy = %v, want ≥0.8", w, acc)
		}
	}
}

func TestMonitorDebounce(t *testing.T) {
	det := fitDetector(t)
	mon := NewMonitor(det, sim.Day, 3)

	snow := sim.NewWorld(sim.Config{Weather: sim.Snow, Seed: 777})
	frames := snow.RunFrames(12)

	changed := false
	changedAt := -1
	for i, fr := range frames {
		cur, ch := mon.Observe(fr)
		if ch {
			changed = true
			changedAt = i
			if cur != sim.Snow {
				t.Fatalf("change reported to %v, want snow", cur)
			}
			break
		}
		if i == 0 && mon.Current() != sim.Day {
			t.Fatal("a single frame must not change the scene")
		}
	}
	if !changed {
		t.Fatal("monitor never detected the scene change")
	}
	if changedAt < 2 {
		t.Fatalf("change completed after %d frames, debounce of 3 requires ≥2", changedAt)
	}
	if mon.Current() != sim.Snow {
		t.Fatalf("settled scene = %v", mon.Current())
	}
}

func TestMonitorIgnoresSingleOutlier(t *testing.T) {
	det := fitDetector(t)
	mon := NewMonitor(det, sim.Day, 4)

	day := sim.NewWorld(sim.Config{Weather: sim.Day, Seed: 888})
	snow := sim.NewWorld(sim.Config{Weather: sim.Snow, Seed: 889})

	// Interleave: mostly day frames with a lone snow frame.
	for i := 0; i < 6; i++ {
		day.Step()
		if _, ch := mon.Observe(day.Render()); ch {
			t.Fatal("day frames must not change the scene")
		}
	}
	snow.Step()
	if _, ch := mon.Observe(snow.Render()); ch {
		t.Fatal("one outlier frame must not change the scene")
	}
	for i := 0; i < 6; i++ {
		day.Step()
		mon.Observe(day.Render())
	}
	if mon.Current() != sim.Day {
		t.Fatalf("scene drifted to %v on a single outlier", mon.Current())
	}
}

func TestMonitorDefaultDebounce(t *testing.T) {
	det := fitDetector(t)
	mon := NewMonitor(det, sim.Rain, 0)
	if mon.Current() != sim.Rain {
		t.Fatalf("initial scene = %v", mon.Current())
	}
}
