// Package weather implements the scene detector that drives the MS
// module: it classifies camera frames into the day/rain/snow
// conditions from low-level image statistics (ambient brightness,
// high-frequency noise energy, speckle density) and debounces scene
// changes so the model manager is not thrashed by single noisy
// frames.
package weather

import (
	"fmt"
	"math"

	"safecross/internal/sim"
	"safecross/internal/vision"
)

// Features are the per-frame statistics the detector classifies on.
type Features struct {
	// Mean is the ambient brightness (snow scenes are washed out and
	// bright).
	Mean float64
	// Noise is the mean absolute deviation from the 3×3 local mean —
	// high-frequency sensor/rain noise energy.
	Noise float64
	// Speckle is the fraction of saturated pixels (snowflakes, dead
	// pixels).
	Speckle float64
}

// Extract computes frame features.
func Extract(im *vision.Image) Features {
	var f Features
	n := float64(im.W * im.H)
	if n == 0 {
		return f
	}
	sum := 0.0
	speckles := 0
	noise := 0.0
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			v := im.At(x, y)
			sum += v
			if v >= 0.985 || v <= 0.015 {
				speckles++
			}
			// 3×3 local mean (out-of-bounds reads are zero; skip the
			// border to avoid fabricated contrast).
			if x > 0 && x < im.W-1 && y > 0 && y < im.H-1 {
				local := 0.0
				for dy := -1; dy <= 1; dy++ {
					for dx := -1; dx <= 1; dx++ {
						local += im.At(x+dx, y+dy)
					}
				}
				noise += math.Abs(v - local/9)
			}
		}
	}
	f.Mean = sum / n
	f.Speckle = float64(speckles) / n
	inner := float64((im.W - 2) * (im.H - 2))
	if inner > 0 {
		f.Noise = noise / inner
	}
	return f
}

// Detector classifies frames by nearest centroid in feature space.
// Fit it on labelled frames (FitFromSim builds one from the
// simulator) before use.
type Detector struct {
	centroids map[sim.Weather]Features
	scale     Features
}

// Fit estimates per-class centroids from labelled frames and the
// feature scales used for distance normalisation. Every class must
// have at least one sample.
func Fit(samples map[sim.Weather][]*vision.Image) (*Detector, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("weather: no samples")
	}
	d := &Detector{centroids: make(map[sim.Weather]Features, len(samples))}
	var lo, hi Features
	first := true
	for w, frames := range samples {
		if len(frames) == 0 {
			return nil, fmt.Errorf("weather: class %v has no samples", w)
		}
		var c Features
		for _, fr := range frames {
			f := Extract(fr)
			c.Mean += f.Mean
			c.Noise += f.Noise
			c.Speckle += f.Speckle
		}
		inv := 1 / float64(len(frames))
		c.Mean *= inv
		c.Noise *= inv
		c.Speckle *= inv
		d.centroids[w] = c
		if first {
			lo, hi = c, c
			first = false
			continue
		}
		lo.Mean = math.Min(lo.Mean, c.Mean)
		hi.Mean = math.Max(hi.Mean, c.Mean)
		lo.Noise = math.Min(lo.Noise, c.Noise)
		hi.Noise = math.Max(hi.Noise, c.Noise)
		lo.Speckle = math.Min(lo.Speckle, c.Speckle)
		hi.Speckle = math.Max(hi.Speckle, c.Speckle)
	}
	d.scale = Features{
		Mean:    math.Max(hi.Mean-lo.Mean, 1e-6),
		Noise:   math.Max(hi.Noise-lo.Noise, 1e-6),
		Speckle: math.Max(hi.Speckle-lo.Speckle, 1e-6),
	}
	return d, nil
}

// FitFromSim renders framesPerScene frames of ambient traffic per
// weather condition and fits a detector on them.
func FitFromSim(framesPerScene int, seed int64) (*Detector, error) {
	if framesPerScene <= 0 {
		return nil, fmt.Errorf("weather: framesPerScene must be positive")
	}
	samples := make(map[sim.Weather][]*vision.Image, 3)
	for i, w := range sim.AllWeathers() {
		world := sim.NewWorld(sim.Config{Weather: w, Seed: seed + int64(i)*997, TurnerEnabled: true})
		samples[w] = world.RunFrames(framesPerScene)
	}
	return Fit(samples)
}

// Classify returns the nearest-centroid class of one frame.
func (d *Detector) Classify(im *vision.Image) sim.Weather {
	f := Extract(im)
	bestW := sim.Day
	best := math.Inf(1)
	for w, c := range d.centroids {
		dm := (f.Mean - c.Mean) / d.scale.Mean
		dn := (f.Noise - c.Noise) / d.scale.Noise
		ds := (f.Speckle - c.Speckle) / d.scale.Speckle
		dist := dm*dm + dn*dn + ds*ds
		if dist < best || (dist == best && w < bestW) {
			best = dist
			bestW = w
		}
	}
	return bestW
}

// Monitor wraps a detector with hysteresis: a scene change is
// reported only after Debounce consecutive frames agree on the new
// class, so a single noisy frame cannot trigger a model switch.
type Monitor struct {
	det      *Detector
	debounce int

	current   sim.Weather
	candidate sim.Weather
	streak    int
}

// DefaultDebounce is the consecutive-frame agreement required before
// a scene change is reported.
const DefaultDebounce = 5

// NewMonitor creates a monitor with the given debounce window
// (DefaultDebounce if ≤ 0), starting in the initial scene.
func NewMonitor(det *Detector, initial sim.Weather, debounce int) *Monitor {
	if debounce <= 0 {
		debounce = DefaultDebounce
	}
	return &Monitor{det: det, debounce: debounce, current: initial}
}

// Current returns the monitor's settled scene.
func (m *Monitor) Current() sim.Weather { return m.current }

// Observe classifies one frame and returns the settled scene plus
// whether this observation completed a scene change.
func (m *Monitor) Observe(im *vision.Image) (sim.Weather, bool) {
	w := m.det.Classify(im)
	if w == m.current {
		m.candidate = m.current
		m.streak = 0
		return m.current, false
	}
	if w == m.candidate {
		m.streak++
	} else {
		m.candidate = w
		m.streak = 1
	}
	if m.streak >= m.debounce {
		m.current = w
		m.streak = 0
		return m.current, true
	}
	return m.current, false
}
