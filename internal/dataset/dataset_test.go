package dataset

import (
	"math/rand"
	"testing"

	"safecross/internal/sim"
	"safecross/internal/vision"
)

func testVPConfig() vision.VPConfig {
	cfg := vision.DefaultVPConfig()
	return cfg
}

func TestTableISpecsMatchPaper(t *testing.T) {
	specs := TableISpecs()
	if len(specs) != 3 {
		t.Fatalf("specs = %d, want 3 scenes", len(specs))
	}
	want := map[sim.Weather]int{sim.Day: 1966, sim.Rain: 34, sim.Snow: 855}
	total := 0
	for _, s := range specs {
		if s.Segments != want[s.Weather] {
			t.Fatalf("%v segments = %d, want %d", s.Weather, s.Segments, want[s.Weather])
		}
		total += s.Segments
	}
	if total != 2855 {
		t.Fatalf("total segments = %d, want 2855 (paper abstract)", total)
	}
}

func TestScaledSpecsKeepProportionsAndFloor(t *testing.T) {
	specs := ScaledTableISpecs(0.01)
	for _, s := range specs {
		if s.Segments < 4 {
			t.Fatalf("%v scaled below floor: %d", s.Weather, s.Segments)
		}
	}
	// Day must stay the largest scene.
	if !(specs[0].Segments > specs[2].Segments && specs[2].Segments >= specs[1].Segments) {
		t.Fatalf("scaled proportions wrong: %+v", specs)
	}
}

func TestGenerateProducesLabelledClips(t *testing.T) {
	clips, err := Generate(Spec{Weather: sim.Day, Segments: 8, Seed: 5}, testVPConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(clips) != 8 {
		t.Fatalf("clips = %d, want 8", len(clips))
	}
	counts := CountByLabel(clips)
	if counts[ClassDanger] == 0 || counts[ClassSafe] == 0 {
		t.Fatalf("class collapse: %v", counts)
	}
	for _, c := range clips {
		if c.Input.Rank() != 4 || c.Input.Shape[0] != 1 || c.Input.Shape[1] != sim.SegmentFrames {
			t.Fatalf("clip tensor shape = %v", c.Input.Shape)
		}
		if c.Input.Shape[2] != testVPConfig().GridH || c.Input.Shape[3] != testVPConfig().GridW {
			t.Fatalf("grid shape = %v", c.Input.Shape)
		}
		if c.Label != ClassDanger && c.Label != ClassSafe {
			t.Fatalf("bad label %d", c.Label)
		}
		if c.Weather != sim.Day {
			t.Fatalf("weather = %v", c.Weather)
		}
		if !c.Input.AllFinite() {
			t.Fatal("clip contains non-finite values")
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Spec{Weather: sim.Day, Segments: 0}, testVPConfig()); err == nil {
		t.Fatal("expected segment-count error")
	}
	if _, err := Generate(Spec{Weather: sim.Day, Segments: 2, DangerFrac: 1.5}, testVPConfig()); err == nil {
		t.Fatal("expected fraction error")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := Spec{Weather: sim.Snow, Segments: 3, Seed: 77}
	a, err := Generate(spec, testVPConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(spec, testVPConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Label != b[i].Label {
			t.Fatal("labels differ across identical runs")
		}
		for j := range a[i].Input.Data {
			if a[i].Input.Data[j] != b[i].Input.Data[j] {
				t.Fatal("clip tensors differ across identical runs")
			}
		}
	}
}

// TestDangerClipsShowZoneOccupancy checks that the VP grids carry the
// signal the classifier needs: danger clips have occupancy mass in
// the grid cells covering the danger zone at the key frame.
func TestDangerClipsShowZoneOccupancy(t *testing.T) {
	cfg := testVPConfig()
	clip, err := FromScenario(sim.Scenario{Weather: sim.Day, Blind: true, Danger: true, Seed: 901}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Key-frame grid = last T slice of the [1,T,H,W] tensor.
	tIdx := clip.Input.Shape[1] - 1
	sum := 0.0
	for y := 0; y < cfg.GridH; y++ {
		for x := 0; x < cfg.GridW; x++ {
			sum += clip.Input.At(0, tIdx, y, x)
		}
	}
	if sum <= 0 {
		t.Fatal("danger clip key frame has no occupancy at all")
	}
}

func TestSplitFractions(t *testing.T) {
	clips := make([]*Clip, 20)
	for i := range clips {
		clips[i] = &Clip{Label: i % 2}
	}
	rng := rand.New(rand.NewSource(1))
	train, val, test, err := Split(clips, rng, 0.8, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(train) != 16 || len(val) != 2 || len(test) != 2 {
		t.Fatalf("split sizes %d/%d/%d, want 16/2/2", len(train), len(val), len(test))
	}
	// Every clip appears exactly once.
	seen := make(map[*Clip]bool)
	for _, set := range [][]*Clip{train, val, test} {
		for _, c := range set {
			if seen[c] {
				t.Fatal("clip appears in two splits")
			}
			seen[c] = true
		}
	}
	if len(seen) != 20 {
		t.Fatalf("split lost clips: %d", len(seen))
	}
	if _, _, _, err := Split(clips, rng, 0.9, 0.2); err == nil {
		t.Fatal("expected invalid-fraction error")
	}
}

func TestBlindZoneTestSetComposition(t *testing.T) {
	clips, err := BlindZoneTestSet(4, 3, testVPConfig(), 42)
	if err != nil {
		t.Fatal(err)
	}
	counts := CountByLabel(clips)
	if counts[ClassDanger] != 4 || counts[ClassSafe] != 3 {
		t.Fatalf("counts = %v, want 4 danger / 3 safe", counts)
	}
	weathers := make(map[sim.Weather]bool)
	for _, c := range clips {
		if !c.Blind {
			t.Fatal("blind-zone set must contain only blind clips")
		}
		weathers[c.Weather] = true
	}
	if len(weathers) < 2 {
		t.Fatalf("blind-zone set should mix scenes, got %v", weathers)
	}
	if _, err := BlindZoneTestSet(0, 0, testVPConfig(), 1); err == nil {
		t.Fatal("expected count error")
	}
}

func TestMirrorClipInvolution(t *testing.T) {
	clips, err := Generate(Spec{Weather: sim.Day, Segments: 2, Seed: 9}, testVPConfig())
	if err != nil {
		t.Fatal(err)
	}
	orig := clips[0]
	m := MirrorClip(orig)
	if m.Label != orig.Label || m.Weather != orig.Weather || m.Blind != orig.Blind {
		t.Fatal("mirror must preserve metadata")
	}
	diff := false
	for i := range m.Input.Data {
		if m.Input.Data[i] != orig.Input.Data[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("mirror changed nothing (degenerate clip?)")
	}
	mm := MirrorClip(m)
	for i := range mm.Input.Data {
		if mm.Input.Data[i] != orig.Input.Data[i] {
			t.Fatal("double mirror must be identity")
		}
	}
	if got := MirrorClips(clips); len(got) != len(clips) {
		t.Fatal("MirrorClips length mismatch")
	}
}
