// Package dataset synthesises the labelled clip collections the paper
// trains and evaluates on (Table I): 32-frame segments across three
// weather scenes, each pre-processed by the VP module into occupancy-
// grid clips, with the paper's two classes — class 0 "danger, do not
// turn left" and class 1 "safe to turn left" — and blind/no-blind
// metadata.
package dataset

import (
	"fmt"
	"math/rand"

	"safecross/internal/sim"
	"safecross/internal/tensor"
	"safecross/internal/vision"
)

// Class labels, matching the paper's convention in Sec. V-B.
const (
	// ClassDanger (0) marks clips where turning left is dangerous.
	ClassDanger = 0
	// ClassSafe (1) marks clips where the left turn is safe.
	ClassSafe = 1
	// NumClasses is the binary classification arity.
	NumClasses = 2
)

// Clip is one pre-processed training/evaluation example.
type Clip struct {
	// Input is the [1, T, H, W] occupancy-grid clip tensor.
	Input *tensor.Tensor
	// Label is ClassDanger or ClassSafe.
	Label int
	// Weather is the scene the clip came from.
	Weather sim.Weather
	// Blind reports whether the occluding truck was present.
	Blind bool
}

// Spec describes a clip collection to generate.
type Spec struct {
	// Weather is the scene condition.
	Weather sim.Weather
	// Segments is the number of clips.
	Segments int
	// DangerFrac is the fraction labelled ClassDanger (default 0.5).
	DangerFrac float64
	// BlindFrac is the fraction with the occluding truck (default
	// 0.5).
	BlindFrac float64
	// Seed makes generation reproducible.
	Seed int64
}

// TableISpecs returns the dataset composition of the paper's Table I:
// 1966 daytime, 34 rain, and 855 snow segments of 32 frames each.
func TableISpecs() []Spec {
	return []Spec{
		{Weather: sim.Day, Segments: 1966, Seed: 1000},
		{Weather: sim.Rain, Segments: 34, Seed: 2000},
		{Weather: sim.Snow, Segments: 855, Seed: 3000},
	}
}

// ScaledTableISpecs returns the Table I composition scaled by the
// given factor (minimum of 4 segments per scene) so tests and quick
// runs keep the day ≫ snow ≫ rain proportions without the full cost.
func ScaledTableISpecs(scale float64) []Spec {
	full := TableISpecs()
	for i := range full {
		n := int(float64(full[i].Segments) * scale)
		if n < 4 {
			n = 4
		}
		full[i].Segments = n
	}
	return full
}

// Generate renders the spec's segments and pre-processes them with a
// fresh VP pipeline per segment, returning labelled clips.
func Generate(spec Spec, vpcfg vision.VPConfig) ([]*Clip, error) {
	if spec.Segments <= 0 {
		return nil, fmt.Errorf("dataset: segment count %d must be positive", spec.Segments)
	}
	if spec.DangerFrac == 0 {
		spec.DangerFrac = 0.5
	}
	if spec.BlindFrac == 0 {
		spec.BlindFrac = 0.5
	}
	if spec.DangerFrac < 0 || spec.DangerFrac > 1 || spec.BlindFrac < 0 || spec.BlindFrac > 1 {
		return nil, fmt.Errorf("dataset: fractions must lie in [0,1]: %+v", spec)
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	clips := make([]*Clip, 0, spec.Segments)
	for i := 0; i < spec.Segments; i++ {
		sc := sim.Scenario{
			Weather: spec.Weather,
			Danger:  rng.Float64() < spec.DangerFrac,
			Blind:   rng.Float64() < spec.BlindFrac,
			Seed:    spec.Seed + int64(i)*7919 + 13,
		}
		clip, err := FromScenario(sc, vpcfg)
		if err != nil {
			return nil, fmt.Errorf("dataset: segment %d: %w", i, err)
		}
		clips = append(clips, clip)
	}
	return clips, nil
}

// FromScenario renders one scenario and converts it to a clip.
func FromScenario(sc sim.Scenario, vpcfg vision.VPConfig) (*Clip, error) {
	seg, err := sc.Generate()
	if err != nil {
		return nil, err
	}
	return FromSegment(seg, vpcfg)
}

// FromSegment pre-processes a rendered segment into a clip: the VP
// pipeline consumes the warm-up frames to prime its background model,
// then produces one occupancy grid per recorded frame.
func FromSegment(seg *sim.Segment, vpcfg vision.VPConfig) (*Clip, error) {
	vp := vision.NewPreprocessor(vpcfg)
	for _, f := range seg.Warmup {
		if _, err := vp.Process(f); err != nil {
			return nil, fmt.Errorf("dataset: warm-up: %w", err)
		}
	}
	grids := make([]*vision.Image, 0, len(seg.Frames))
	for _, f := range seg.Frames {
		g, err := vp.Process(f)
		if err != nil {
			return nil, fmt.Errorf("dataset: vp: %w", err)
		}
		grids = append(grids, g)
	}
	input, err := vision.ClipTensor(grids)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	label := ClassSafe
	if seg.Danger {
		label = ClassDanger
	}
	return &Clip{
		Input:   input,
		Label:   label,
		Weather: seg.Weather,
		Blind:   seg.Blind,
	}, nil
}

// MirrorClip returns the clip flipped left-to-right: the
// right-turn-blind-zone variant for left-driving countries. Labels
// are unchanged — the hazard geometry is mirrored, not altered.
func MirrorClip(c *Clip) *Clip {
	t, h, w := c.Input.Shape[1], c.Input.Shape[2], c.Input.Shape[3]
	flipped := tensor.New(1, t, h, w)
	for ti := 0; ti < t; ti++ {
		for y := 0; y < h; y++ {
			base := (ti*h + y) * w
			for x := 0; x < w; x++ {
				flipped.Data[base+w-1-x] = c.Input.Data[base+x]
			}
		}
	}
	return &Clip{Input: flipped, Label: c.Label, Weather: c.Weather, Blind: c.Blind}
}

// MirrorClips maps MirrorClip over a slice.
func MirrorClips(clips []*Clip) []*Clip {
	out := make([]*Clip, len(clips))
	for i, c := range clips {
		out[i] = MirrorClip(c)
	}
	return out
}

// Split shuffles clips with rng and partitions them into train,
// validation, and test sets with the given fractions (the paper uses
// 8:1:1). The remainder after train and val goes to test.
func Split(clips []*Clip, rng *rand.Rand, trainFrac, valFrac float64) (train, val, test []*Clip, err error) {
	if trainFrac < 0 || valFrac < 0 || trainFrac+valFrac > 1 {
		return nil, nil, nil, fmt.Errorf("dataset: invalid split fractions %v/%v", trainFrac, valFrac)
	}
	shuffled := append([]*Clip(nil), clips...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	nTrain := int(float64(len(shuffled)) * trainFrac)
	nVal := int(float64(len(shuffled)) * valFrac)
	train = shuffled[:nTrain]
	val = shuffled[nTrain : nTrain+nVal]
	test = shuffled[nTrain+nVal:]
	return train, val, test, nil
}

// CountByLabel returns the number of clips per class.
func CountByLabel(clips []*Clip) map[int]int {
	out := make(map[int]int, NumClasses)
	for _, c := range clips {
		out[c.Label]++
	}
	return out
}

// BlindZoneTestSet builds the throughput experiment's evaluation set
// (Sec. V-D): blind-area segments only, nDanger of class 0 and nSafe
// of class 1, drawn across all three weather scenes as in the paper's
// 10-hour statistic. The paper uses 32 danger and 31 safe segments.
func BlindZoneTestSet(nDanger, nSafe int, vpcfg vision.VPConfig, seed int64) ([]*Clip, error) {
	if nDanger < 0 || nSafe < 0 || nDanger+nSafe == 0 {
		return nil, fmt.Errorf("dataset: blind-zone set needs positive counts")
	}
	weathers := sim.AllWeathers()
	clips := make([]*Clip, 0, nDanger+nSafe)
	build := func(n int, danger bool, base int64) error {
		for i := 0; i < n; i++ {
			sc := sim.Scenario{
				Weather: weathers[i%len(weathers)],
				Blind:   true,
				Danger:  danger,
				Seed:    seed + base + int64(i)*104729,
			}
			clip, err := FromScenario(sc, vpcfg)
			if err != nil {
				return err
			}
			clips = append(clips, clip)
		}
		return nil
	}
	if err := build(nDanger, true, 0); err != nil {
		return nil, fmt.Errorf("dataset: blind-zone danger clips: %w", err)
	}
	if err := build(nSafe, false, 1<<32); err != nil {
		return nil, fmt.Errorf("dataset: blind-zone safe clips: %w", err)
	}
	return clips, nil
}
