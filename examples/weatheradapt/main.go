// Weatheradapt: few-shot weather adaptation and millisecond model
// switching — the FL and MS modules working together.
//
// A daytime model is trained normally; a snow model is adapted from
// it with only a handful of snowy clips (MAML inner loop); both are
// registered with the PipeSwitch manager, and a scene change swaps
// them on the simulated GPU in milliseconds.
//
// Run: go run ./examples/weatheradapt
package main

import (
	"fmt"
	"os"

	"safecross/internal/dataset"
	"safecross/internal/fewshot"
	"safecross/internal/gpusim"
	"safecross/internal/pipeswitch"
	"safecross/internal/sim"
	"safecross/internal/video"
	"safecross/internal/vision"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "weatheradapt:", err)
		os.Exit(1)
	}
}

func makeClips(weather sim.Weather, n int, clipLen int, seed int64) ([]*dataset.Clip, error) {
	vpcfg := vision.DefaultVPConfig()
	clips := make([]*dataset.Clip, 0, n)
	for i := 0; i < n; i++ {
		sc := sim.Scenario{
			Weather: weather,
			Danger:  i%2 == 0,
			Blind:   i%4 < 2,
			Seed:    seed + int64(i)*53,
		}
		seg, err := sc.GenerateN(clipLen)
		if err != nil {
			return nil, err
		}
		clip, err := dataset.FromSegment(seg, vpcfg)
		if err != nil {
			return nil, err
		}
		clips = append(clips, clip)
	}
	return clips, nil
}

func run() error {
	const clipLen = 16
	vpcfg := vision.DefaultVPConfig()
	builder := video.SlowFastBuilder(video.SlowFastConfig{
		T: clipLen, H: vpcfg.GridH, W: vpcfg.GridW,
		Alpha: 8, Classes: dataset.NumClasses, Lateral: true, Seed: 11,
	})

	// Train the daytime basic model (plentiful data).
	fmt.Println("training daytime model on 48 clips...")
	dayTrain, err := makeClips(sim.Day, 48, clipLen, 100)
	if err != nil {
		return err
	}
	day, err := builder()
	if err != nil {
		return err
	}
	if _, err := video.Train(day, dayTrain, video.TrainConfig{Epochs: 8, LR: 0.01, Seed: 1}); err != nil {
		return err
	}

	// Snow: only 6 labelled clips exist (the paper's few-shot regime).
	snowSupport, err := makeClips(sim.Snow, 6, clipLen, 4000)
	if err != nil {
		return err
	}
	snowTest, err := makeClips(sim.Snow, 30, clipLen, 5000)
	if err != nil {
		return err
	}

	evalOn := func(m video.Classifier) (float64, error) {
		cm, err := video.Evaluate(m, snowTest)
		if err != nil {
			return 0, err
		}
		return cm.Top1(), nil
	}
	before, err := evalOn(day)
	if err != nil {
		return err
	}
	fmt.Printf("day model on snow clips BEFORE adaptation: top-1 %.3f\n", before)

	fmt.Println("few-shot adapting with 6 snow clips (MAML inner loop)...")
	snow, err := fewshot.AdaptFromPretrained(builder, day, snowSupport, 12, 0.03)
	if err != nil {
		return err
	}
	after, err := evalOn(snow)
	if err != nil {
		return err
	}
	fmt.Printf("snow model on snow clips AFTER adaptation:  top-1 %.3f\n", after)

	// Model switching: register both under the PipeSwitch manager.
	dev, err := gpusim.NewDevice(gpusim.DefaultConfig())
	if err != nil {
		return err
	}
	mgr := pipeswitch.NewManager(dev)
	dayManifest := pipeswitch.SafeCrossSlowFast()
	dayManifest.Name = "slowfast-day"
	snowManifest := pipeswitch.SafeCrossSlowFast()
	snowManifest.Name = "slowfast-snow"
	if err := mgr.Register("day", dayManifest); err != nil {
		return err
	}
	if err := mgr.Register("snow", snowManifest); err != nil {
		return err
	}
	if _, err := mgr.Activate("day"); err != nil {
		return err
	}
	rep, err := mgr.Activate("snow")
	if err != nil {
		return err
	}
	fmt.Printf("\nscene change day → snow: PipeSwitch swapped models in %v (%d groups)\n",
		rep.Total, rep.Groups)
	fmt.Printf("SLO (<%v) violations: %d\n", pipeswitch.DefaultSLO, mgr.SLOViolations())
	return nil
}
