// Throughput: the paper's Sec. V-D claim — SafeCross increases
// left-turn throughput by ≈50 % in blind-zone scenes — reproduced two
// ways: (1) classifying a blind-zone clip set and counting released
// turns, and (2) a closed-loop simulation where the advisory drives
// the turner directly.
//
// Run: go run ./examples/throughput
package main

import (
	"fmt"
	"os"

	"safecross/internal/dataset"
	"safecross/internal/safecross"
	"safecross/internal/sim"
	"safecross/internal/video"
	"safecross/internal/vision"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "throughput:", err)
		os.Exit(1)
	}
}

func run() error {
	const clipLen = 16
	vpcfg := vision.DefaultVPConfig()

	// Train a day model.
	fmt.Println("training classifier...")
	var train []*dataset.Clip
	for i := 0; i < 56; i++ {
		sc := sim.Scenario{
			Weather: sim.Day, Danger: i%2 == 0, Blind: i%4 < 2,
			Seed: int64(7000 + i*17),
		}
		seg, err := sc.GenerateN(clipLen)
		if err != nil {
			return err
		}
		clip, err := dataset.FromSegment(seg, vpcfg)
		if err != nil {
			return err
		}
		train = append(train, clip)
	}
	model, err := video.NewSlowFast(video.SlowFastConfig{
		T: clipLen, H: vpcfg.GridH, W: vpcfg.GridW,
		Alpha: 8, Classes: dataset.NumClasses, Lateral: true, Seed: 21,
	})
	if err != nil {
		return err
	}
	if _, err := video.Train(model, train, video.TrainConfig{Epochs: 8, LR: 0.01, Seed: 3}); err != nil {
		return err
	}

	// (1) Blind-zone clip statistic, like the paper's 63-segment set.
	var clips []*dataset.Clip
	for i := 0; i < 24; i++ {
		sc := sim.Scenario{
			Weather: sim.Day, Blind: true, Danger: i%2 == 0,
			Seed: int64(90000 + i*13),
		}
		seg, err := sc.GenerateN(clipLen)
		if err != nil {
			return err
		}
		clip, err := dataset.FromSegment(seg, vpcfg)
		if err != nil {
			return err
		}
		clips = append(clips, clip)
	}
	res, err := safecross.EvaluateThroughput(model, clips)
	if err != nil {
		return err
	}
	fmt.Printf("\nblind-zone clip set: %d clips (%d danger / %d safe)\n",
		res.Total, res.DangerClips, res.SafeClips)
	fmt.Printf("classification accuracy: %.3f   unsafe releases: %d\n", res.Accuracy, res.UnsafeReleases)
	fmt.Printf("throughput gain: +%.0f%% of blind scenes released for an immediate turn\n",
		100*res.ThroughputGain)
	fmt.Println("(paper: 63 clips, accuracy 1.0, +32/63 ≈ +50%)")

	// (2) Closed loop: the advisory drives the occluded turner.
	fmt.Println("\nclosed-loop simulation (6000 frames per weather):")
	for _, w := range sim.AllWeathers() {
		r, err := safecross.SimulateThroughput(w, 6000, int64(w))
		if err != nil {
			return err
		}
		fmt.Printf("  %-5s turns without SafeCross: %3d   with: %3d   (+%.0f%%)\n",
			w, r.TurnsWithout, r.TurnsWith, 100*r.Improvement)
	}
	return nil
}
