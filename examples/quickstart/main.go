// Quickstart: the end-to-end SafeCross loop in one file.
//
// It (1) generates labelled clips from the intersection simulator,
// (2) trains a small SlowFast classifier, (3) wires the full
// framework (VP → VC → MS with a simulated GPU), and (4) streams a
// live occluded intersection through it, printing the left-turn
// advisory per frame.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"safecross/internal/dataset"
	"safecross/internal/safecross"
	"safecross/internal/sim"
	"safecross/internal/video"
	"safecross/internal/vision"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	const clipLen = 16 // short clips keep the demo fast; the paper uses 32
	vpcfg := vision.DefaultVPConfig()

	// 1. Generate a small balanced training set from the simulator.
	fmt.Println("generating training clips...")
	var clips []*dataset.Clip
	for i := 0; i < 48; i++ {
		sc := sim.Scenario{
			Weather: sim.Day,
			Danger:  i%2 == 0,
			Blind:   i%4 < 2,
			Seed:    int64(100 + i*37),
		}
		seg, err := sc.GenerateN(clipLen)
		if err != nil {
			return err
		}
		clip, err := dataset.FromSegment(seg, vpcfg)
		if err != nil {
			return err
		}
		clips = append(clips, clip)
	}

	// 2. Train the SlowFast classifier (the paper's basic model).
	fmt.Println("training SlowFast classifier...")
	model, err := video.NewSlowFast(video.SlowFastConfig{
		T: clipLen, H: vpcfg.GridH, W: vpcfg.GridW,
		Alpha: 8, Classes: dataset.NumClasses, Lateral: true, Seed: 7,
	})
	if err != nil {
		return err
	}
	if _, err := video.Train(model, clips, video.TrainConfig{
		Epochs: 8, LR: 0.01, Seed: 1, Log: os.Stdout,
	}); err != nil {
		return err
	}

	// 3. Assemble the full framework: the day model serves all scenes
	// in this demo.
	models := map[sim.Weather]video.Classifier{
		sim.Day: model, sim.Rain: model, sim.Snow: model,
	}
	framework, err := safecross.NewDefault(safecross.Config{ClipLen: clipLen}, models)
	if err != nil {
		return err
	}

	// 4. Stream a live occluded intersection and print advisories.
	fmt.Println("\nstreaming occluded intersection (truck blocks the turner's view):")
	world := sim.NewWorld(sim.Config{
		Weather: sim.Day, TruckPresent: true, TurnerEnabled: true,
		TurnerRespawn: true, Seed: 42,
	})
	for frame := 1; frame <= 3*clipLen; frame++ {
		world.Step()
		d, err := framework.ProcessFrame(world.Render())
		if err != nil {
			return err
		}
		if !d.Ready || frame%4 != 0 {
			continue
		}
		truth := "risk"
		if !world.ConflictRisk() {
			truth = "clear"
		}
		advice := "WAIT  — vehicle in blind area"
		if d.Safe {
			advice = "TURN  — blind area clear"
		}
		fmt.Printf("frame %3d: %s (ground truth: %s)\n", frame, advice, truth)
	}
	fmt.Printf("\nturns completed with advisories flowing: %d\n", world.TurnsCompleted())
	return nil
}
