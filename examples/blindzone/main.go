// Blindzone: the detection-method comparison of the paper's Fig. 8
// and Table II on the canonical occluded intersection.
//
// A truck blocks the left-turner's view; a low-contrast car crosses
// the danger zone behind it. Each method (background subtraction,
// sparse/dense optical flow, a YOLO-style grid detector) is run on
// the same frames and annotated output shows who finds the hidden
// car.
//
// Run: go run ./examples/blindzone
package main

import (
	"fmt"
	"os"
	"time"

	"safecross/internal/detect"
	"safecross/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "blindzone:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("Table II — detection method comparison on the occluded scene")
	fmt.Println("(paper: BGS 0.74ms yes | sparse OF 6.43ms no | dense OF 224ms yes | YOLOv3 256ms no)")
	fmt.Println()

	rows, err := experiments.TableII(3, 7)
	if err != nil {
		return err
	}
	fmt.Printf("%-10s %-14s %-10s\n", "method", "time/frame", "finds car?")
	for _, r := range rows {
		fmt.Printf("%-10s %-14v %-10v\n", r.Method, r.MeanTime.Round(10*time.Microsecond), r.Detected)
	}
	fmt.Println()

	// Render the annotated frames (Fig. 8): '.' outlines the danger
	// zone, '@' the ground-truth car, '#' each method's detections.
	if err := experiments.Fig8(os.Stdout, 7); err != nil {
		return err
	}

	scene, err := detect.CanonicalScene()
	if err != nil {
		return err
	}
	fmt.Printf("\nground truth: car %v inside danger zone %v\n", scene.Car, scene.Zone)
	fmt.Println("conclusion: background subtraction is both the fastest and the only")
	fmt.Println("cheap method that finds the hidden car — the paper's Observation 1.")
	return nil
}
