package safecross_test

// Benchmark harness: one benchmark per table and figure of the
// paper's evaluation section. Each benchmark drives the same code
// path cmd/safecross-bench uses to regenerate the artifact, so
// `go test -bench=. -benchmem` both times the substrate and exercises
// every experiment end to end. Key experimental quantities (accuracy,
// switch latency, throughput gain) are attached as custom benchmark
// metrics.

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"safecross/internal/dataset"
	"safecross/internal/detect"
	"safecross/internal/experiments"
	"safecross/internal/fewshot"
	"safecross/internal/gpusim"
	"safecross/internal/nn"
	"safecross/internal/pipeswitch"
	"safecross/internal/safecross"
	"safecross/internal/serve"
	"safecross/internal/sim"
	"safecross/internal/telemetry"
	"safecross/internal/tensor"
	"safecross/internal/video"
	"safecross/internal/vision"
)

// BenchmarkTableI_DatasetGeneration times synthesis of the (scaled)
// Table I dataset: rendering, VP pre-processing, and labelling.
func BenchmarkTableI_DatasetGeneration(b *testing.B) {
	cfg := experiments.Quick()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.TableI(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 3 {
			b.Fatal("wrong scene count")
		}
	}
}

// tableIIScene caches the canonical occluded scene and trained
// detectors across Table II sub-benchmarks.
var (
	tableIIOnce  sync.Once
	tableIIScene *sim.OccludedScene
	tableIIDets  []detect.Detector
	tableIIErr   error
)

func tableIISetup(b *testing.B) (*sim.OccludedScene, []detect.Detector) {
	b.Helper()
	tableIIOnce.Do(func() {
		tableIIScene, tableIIErr = detect.CanonicalScene()
		if tableIIErr != nil {
			return
		}
		tableIIDets, tableIIErr = detect.DefaultDetectors(7)
	})
	if tableIIErr != nil {
		b.Fatal(tableIIErr)
	}
	return tableIIScene, tableIIDets
}

// BenchmarkTableII_Detection times each detection method on the
// canonical occluded frame — the direct analogue of Table II's
// execution-time column. The hit/miss pattern is asserted.
func BenchmarkTableII_Detection(b *testing.B) {
	scene, dets := tableIISetup(b)
	wantHit := map[string]bool{"bgs": true, "sparse-of": false, "dense-of": true, "yolite": false}
	for _, d := range dets {
		d := d
		b.Run(d.Name(), func(b *testing.B) {
			b.ReportAllocs()
			var rects []vision.Rect
			var err error
			for i := 0; i < b.N; i++ {
				rects, err = d.Detect(scene.Frames)
				if err != nil {
					b.Fatal(err)
				}
			}
			hit := detect.HitsZone(rects, scene.Zone, detect.HitOverlap)
			if hit != wantHit[d.Name()] {
				b.Fatalf("%s: detected=%v, want %v", d.Name(), hit, wantHit[d.Name()])
			}
		})
	}
}

// pipelineModels caches the trained scene models for the learning
// benchmarks (Tables III, V, throughput).
var (
	pipelineOnce sync.Once
	pipelineTM   *experiments.TrainedModels
	pipelineErr  error
)

func pipelineSetup(b *testing.B) *experiments.TrainedModels {
	b.Helper()
	pipelineOnce.Do(func() {
		pipelineTM, pipelineErr = experiments.TrainSceneModels(experiments.Quick())
	})
	if pipelineErr != nil {
		b.Fatal(pipelineErr)
	}
	return pipelineTM
}

// BenchmarkTableIII_SceneAccuracy times per-scene evaluation and
// reports the Table III accuracies as metrics.
func BenchmarkTableIII_SceneAccuracy(b *testing.B) {
	tm := pipelineSetup(b)
	b.ResetTimer()
	var rows []experiments.AccuracyRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.TableIII(tm)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Top1, r.Name+"-top1")
	}
}

// BenchmarkTableIV_Architectures times one training+evaluation run
// per architecture on a small daytime set.
func BenchmarkTableIV_Architectures(b *testing.B) {
	cfg := experiments.Quick()
	vp := vision.DefaultVPConfig()
	clips := makeBenchClips(b, cfg.ClipLen, 24)
	builders := map[string]video.Builder{
		"slowfast": video.SlowFastBuilder(video.SlowFastConfig{
			T: cfg.ClipLen, H: vp.GridH, W: vp.GridW, Alpha: 8, Classes: 2, Lateral: true, Seed: 1,
		}),
		"c3d": video.C3DBuilder(video.SlowFastConfig{
			T: cfg.ClipLen, H: vp.GridH, W: vp.GridW, Alpha: 8, Classes: 2, Lateral: true, Seed: 2,
		}),
		"tsn": video.TSNBuilder(video.SlowFastConfig{
			T: cfg.ClipLen, H: vp.GridH, W: vp.GridW, Alpha: 8, Classes: 2, Lateral: true, Seed: 3,
		}),
	}
	for name, builder := range builders {
		builder := builder
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m, err := builder()
				if err != nil {
					b.Fatal(err)
				}
				if _, err := video.Train(m, clips, video.TrainConfig{Epochs: 2, LR: 0.008, Seed: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTableV_FewShotAblation times the Table V evaluation and
// reports the with/without accuracies.
func BenchmarkTableV_FewShotAblation(b *testing.B) {
	tm := pipelineSetup(b)
	b.ResetTimer()
	var rows []experiments.AccuracyRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.TableV(tm)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Top1, shorten(r.Name)+"-top1")
	}
}

func shorten(name string) string {
	out := make([]rune, 0, len(name))
	for _, r := range name {
		if r == ' ' {
			out = append(out, '-')
		} else {
			out = append(out, r)
		}
	}
	return string(out)
}

// BenchmarkTableVI_ModelSwitching times the two switching methods per
// model on the simulated GPU and reports virtual-time latencies (ms).
func BenchmarkTableVI_ModelSwitching(b *testing.B) {
	dev, err := gpusim.NewDevice(gpusim.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	for _, m := range pipeswitch.BuiltinModels() {
		m := m
		b.Run(m.Name+"/stop-and-start", func(b *testing.B) {
			var rep pipeswitch.Report
			for i := 0; i < b.N; i++ {
				rep, err = pipeswitch.StopAndStart{}.Switch(dev, nil, m)
				if err != nil {
					b.Fatal(err)
				}
				dev.Reset()
			}
			b.ReportMetric(float64(rep.Total.Microseconds())/1000, "virtual-ms")
		})
		b.Run(m.Name+"/pipeswitch", func(b *testing.B) {
			var rep pipeswitch.Report
			for i := 0; i < b.N; i++ {
				rep, err = pipeswitch.Pipelined{}.Switch(dev, nil, m)
				if err != nil {
					b.Fatal(err)
				}
				dev.Reset()
			}
			b.ReportMetric(float64(rep.Total.Microseconds())/1000, "virtual-ms")
		})
	}
}

// BenchmarkTableVI_GroupingAblation times the grouping-strategy
// ablation (per-layer vs single vs optimal DP).
func BenchmarkTableVI_GroupingAblation(b *testing.B) {
	m := pipeswitch.ResNet152()
	cfg := gpusim.DefaultConfig()
	b.Run("optimal-search", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := pipeswitch.OptimalBoundaries(m, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkThroughput_ClosedLoop times the Sec. V-D closed-loop
// simulation and reports the improvement.
func BenchmarkThroughput_ClosedLoop(b *testing.B) {
	var res *safecross.SimThroughputResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = safecross.SimulateThroughput(sim.Day, 3000, 11)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Improvement, "turn-gain")
}

// BenchmarkThroughput_Classification times the blind-zone clip
// classification path with the trained pipeline.
func BenchmarkThroughput_Classification(b *testing.B) {
	tm := pipelineSetup(b)
	b.ResetTimer()
	var rep *experiments.ThroughputReport
	var err error
	for i := 0; i < b.N; i++ {
		rep, err = experiments.Throughput(tm)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rep.Classification.ThroughputGain, "gain")
	b.ReportMetric(rep.Classification.Accuracy, "accuracy")
}

// BenchmarkFig3_VPPipeline times one frame through the VP pipeline
// (background subtraction, opening, occupancy grid) — the per-frame
// cost of the deployed system's pre-processing.
func BenchmarkFig3_VPPipeline(b *testing.B) {
	world := sim.NewWorld(sim.Config{Weather: sim.Day, TruckPresent: true, Seed: 9})
	vp := vision.NewPreprocessor(vision.DefaultVPConfig())
	frames := world.RunFrames(8)
	for _, f := range frames {
		if _, err := vp.Process(f); err != nil {
			b.Fatal(err)
		}
	}
	frame := world.Render()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vp.Process(frame); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8_SlowFastInference times clip classification — the
// real-time budget of the deployed warning path. Both sub-benchmarks
// classify the same 8 clips per iteration: "per-clip" drives the
// allocating single-clip forward once per clip, "batched-ws" stacks
// them into one batch-native forward pass fed from a reused
// workspace, so allocs/op compares the two memory models directly.
func BenchmarkFig8_SlowFastInference(b *testing.B) {
	tm := pipelineSetup(b)
	const batch = 8
	clipSet := makeBenchClips(b, tm.Cfg.ClipLen, batch)
	clips := make([]*tensor.Tensor, batch)
	for i, c := range clipSet {
		clips[i] = c.Input
	}
	m := tm.Models[sim.Day]

	b.Run("per-clip", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, clip := range clips {
				if _, err := video.Predict(m, clip); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("batched-ws", func(b *testing.B) {
		ws := nn.NewWorkspace()
		if _, err := video.PredictBatch(m, clips, ws); err != nil {
			b.Fatal(err) // warm the workspace outside the timed loop
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := video.PredictBatch(m, clips, ws); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDetectEval_Yolite times the detector's steady-state frame
// eval — the deployed per-frame path: ScoreMapWS through the pooled
// workspace plus connected-component boxing. Before timing it asserts
// the warm score path allocates nothing at all: the workspace owns
// the frame copy, every conv scratch buffer, and the sigmoid map.
func BenchmarkDetectEval_Yolite(b *testing.B) {
	d := yoliteSetup(b)
	scene, err := detect.CanonicalScene()
	if err != nil {
		b.Fatal(err)
	}
	frames := scene.Frames
	frame := frames[len(frames)-1]

	ws := nn.NewWorkspace()
	if _, err := d.ScoreMapWS(frame, ws); err != nil {
		b.Fatal(err) // warm the workspace outside the assertion
	}
	ws.Reset()
	if allocs := testing.AllocsPerRun(10, func() {
		if _, err := d.ScoreMapWS(frame, ws); err != nil {
			b.Fatal(err)
		}
		ws.Reset()
	}); allocs > 0 {
		b.Fatalf("steady-state detect score path allocates %.0f/run, want 0", allocs)
	}

	if _, err := d.Detect(frames); err != nil {
		b.Fatal(err) // warm the detector's private workspace and mask
	}
	b.ReportAllocs()
	b.ResetTimer()
	var rects []vision.Rect
	for i := 0; i < b.N; i++ {
		rects, err = d.Detect(frames)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(rects)), "boxes")
}

// cachedYoliteBench trains the detector once per benchmark binary.
var (
	yoliteBenchOnce sync.Once
	yoliteBenchDet  *detect.Yolite
	yoliteBenchErr  error
)

func yoliteSetup(b *testing.B) *detect.Yolite {
	b.Helper()
	yoliteBenchOnce.Do(func() {
		yoliteBenchDet, yoliteBenchErr = detect.TrainYolite(7, 8)
	})
	if yoliteBenchErr != nil {
		b.Fatal(yoliteBenchErr)
	}
	return yoliteBenchDet
}

// BenchmarkFewshotAdapt times one full few-shot episode on the
// trained daytime model: the MAML inner loop on a 4-clip support set
// (train-mode forwards) followed by query evaluation through the
// pooled batch engine. The reused workspace means the eval half of
// the episode stops allocating once warm — allocs/op is dominated by
// adaptation, the part that must stay on the training path.
func BenchmarkFewshotAdapt(b *testing.B) {
	tm := pipelineSetup(b)
	m, err := fewshot.NewFromPretrained(tm.Builder, tm.Models[sim.Day])
	if err != nil {
		b.Fatal(err)
	}
	clips := makeBenchClips(b, tm.Cfg.ClipLen, 12)
	task := fewshot.Task{Support: clips[:4], Query: clips[4:]}
	ws := nn.NewWorkspace()
	if _, _, err := m.EvalTask(task, 2, 0.05, ws); err != nil {
		b.Fatal(err) // warm the eval workspace outside the timed loop
	}
	b.ReportAllocs()
	b.ResetTimer()
	var cm *nn.ConfusionMatrix
	for i := 0; i < b.N; i++ {
		_, cm, err = m.EvalTask(task, 2, 0.05, ws)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(cm.Top1(), "query-top1")
}

// BenchmarkServe_MultiIntersection drives the inference-serving plane
// with concurrent intersection feeds, comparing the per-clip
// single-GPU baseline against the dynamically batched multi-GPU
// configuration and a bursty 16-feed overload that exercises the
// adaptive batch-target growth. Throughput is reported in virtual GPU
// time (virt-clip/s), which is deterministic and independent of host
// core count; wall-clock clips/s is the standard benchmark metric.
func BenchmarkServe_MultiIntersection(b *testing.B) {
	builder := video.SlowFastBuilder(video.SlowFastConfig{
		T: 16, H: 10, W: 16, Alpha: 8, Classes: 2, Lateral: true, Seed: 7,
	})
	models := make(map[sim.Weather]video.Classifier)
	for _, scene := range sim.AllWeathers() {
		m, err := builder()
		if err != nil {
			b.Fatal(err)
		}
		models[scene] = m
	}
	factory := serve.Replicas(builder, models)

	const clipsPer = 12
	configs := []struct {
		name  string
		feeds int
		// burst is how many clips each feed has outstanding at once: 1
		// models a camera that waits for each verdict, larger values
		// model arrival bursts (backed-up RTSP frames flushing at once)
		// that build real queue depth and force the adaptive batch
		// target to grow.
		burst int
		cfg   serve.Config
	}{
		{"baseline-1gpu", 4, 1, serve.Config{Workers: 1, MaxBatch: 1, QueueDepth: 256, SLO: time.Minute}},
		{"batched-4gpu", 4, 1, serve.Config{Workers: 4, MaxBatch: 8, QueueDepth: 256, SLO: time.Minute}},
		// The burst plane runs a 1ms batch window: with sub-millisecond
		// per-clip compute, the adaptive growth gate (compute p50 vs a
		// quarter of the window) stays open, so the target tracks the
		// backlog instead of pinning at 1.
		{"burst-16feeds-4gpu", 16, 4, serve.Config{Workers: 4, MaxBatch: 8, QueueDepth: 512, BatchLatency: time.Millisecond, SLO: time.Minute}},
	}
	for _, c := range configs {
		c := c
		b.Run(c.name, func(b *testing.B) {
			// Server construction (model replica cloning) happens once,
			// outside the timed loop: the benchmark measures the serving
			// path — queueing, batching, switching, batched inference —
			// with long-lived workers, the deployed steady state.
			s, err := serve.New(c.cfg, factory)
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for p := 0; p < c.feeds; p++ {
					wg.Add(1)
					go func(p int) {
						defer wg.Done()
						rng := rand.New(rand.NewSource(int64(100 + p)))
						for j := 0; j < clipsPer; j += c.burst {
							var bwg sync.WaitGroup
							for k := 0; k < c.burst && j+k < clipsPer; k++ {
								clip := tensor.RandnTensor(rng, 1, 1, 16, 10, 16)
								scene := sim.AllWeathers()[(p+j+k)%3]
								bwg.Add(1)
								go func() {
									defer bwg.Done()
									if _, err := s.Submit(context.Background(), serve.Request{Scene: scene, Clip: clip}); err != nil {
										b.Error(err)
									}
								}()
							}
							bwg.Wait()
						}
					}(p)
				}
				wg.Wait()
			}
			b.StopTimer()
			st := s.Stats()
			if st.Completed != b.N*c.feeds*clipsPer {
				b.Fatalf("%d of %d clips completed", st.Completed, b.N*c.feeds*clipsPer)
			}
			b.ReportMetric(st.VirtualThroughput(), "virt-clip/s")
			b.ReportMetric(float64(st.P99.Microseconds()), "p99-µs")
			b.ReportMetric(st.MeanBatch(), "mean-batch")
			// The adaptive batch-sizing series: the live early-seal
			// target plus its high-water mark, and the pool's workspace
			// reuse split. Under the burst config the target must react
			// to queue depth, so its max rises above 1.
			b.ReportMetric(float64(st.BatchTargetMax), "batch-target-max")
			b.ReportMetric(float64(st.WorkspaceHits)/float64(b.N), "ws-hits/op")
			b.ReportMetric(float64(st.WorkspaceMisses)/float64(b.N), "ws-misses/op")
			// Scrape the telemetry registry the serving plane recorded
			// into: queue-wait and switch-cost land in BENCH_infer.json
			// via cmd/benchjson, which folds every ReportMetric unit
			// into the benchmark's Metrics map.
			reg := s.Metrics()
			if h := reg.FindHistogram("serve_queue_wait_seconds"); h != nil && h.Count() > 0 {
				b.ReportMetric(float64(h.QuantileDuration(0.99).Microseconds()), "queue-wait-p99-µs")
			}
			if h := reg.FindHistogram("serve_switch_cost_seconds"); h != nil && h.Count() > 0 {
				b.ReportMetric(float64(h.QuantileDuration(0.99).Microseconds()), "switch-cost-p99-µs")
				b.ReportMetric(float64(h.Count())/float64(b.N), "switches/op")
			}
			// The SLO view of the same run: burn rate for a 250ms
			// queue-wait objective at p99, computed from the identical
			// histogram state the fleet's burn-rate engine evaluates. A
			// burn of 0 means the whole run stayed inside the objective;
			// anything ≥ 1 would be eating error budget faster than
			// sustainable.
			slos := telemetry.NewSLOEngine(telemetry.SLOEngineConfig{Metrics: reg})
			if err := slos.Add(telemetry.SLO{
				Name: "queue-wait", Series: "serve_queue_wait_seconds",
				Objective: 250 * time.Millisecond, Target: 0.99,
			}, reg); err == nil {
				slos.Tick(time.Now())
				if burn, _, ok := slos.BurnRates("queue-wait"); ok {
					b.ReportMetric(burn, "slo-burn")
				}
			}
		})
	}
}

// BenchmarkServe_MemoryPressure drives the serving plane with a
// per-worker memory budget that holds a single SlowFast model while
// three scenes rotate through it, so every scene change forces an LRU
// eviction and returning scenes pay a PipeSwitch reload. The run must
// complete every clip — memory pressure degrades latency, never
// correctness — and the churn is reported as evictions/reloads
// alongside the per-class queue-wait percentiles.
func BenchmarkServe_MemoryPressure(b *testing.B) {
	builder := video.SlowFastBuilder(video.SlowFastConfig{
		T: 16, H: 10, W: 16, Alpha: 8, Classes: 2, Lateral: true, Seed: 11,
	})
	models := make(map[sim.Weather]video.Classifier)
	for _, scene := range sim.AllWeathers() {
		m, err := builder()
		if err != nil {
			b.Fatal(err)
		}
		models[scene] = m
	}
	factory := serve.Replicas(builder, models)

	const intersections, clipsPer = 4, 12
	cfg := serve.Config{
		Workers:    2,
		MaxBatch:   8,
		QueueDepth: 256,
		SLO:        time.Minute,
		// Fits exactly one 75 MiB SlowFast manifest: the three scene
		// models cannot co-reside, so rotation forces churn.
		WorkerMemory: (75 + 1) << 20,
	}
	s, err := serve.New(cfg, factory)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for p := 0; p < intersections; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(200 + p)))
				for j := 0; j < clipsPer; j++ {
					clip := tensor.RandnTensor(rng, 1, 1, 16, 10, 16)
					req := serve.Request{Scene: sim.AllWeathers()[(p+j)%3], Clip: clip}
					if j%4 == 0 {
						req.Priority = serve.Critical
					}
					if _, err := s.Submit(context.Background(), req); err != nil {
						b.Error(err)
						return
					}
				}
			}(p)
		}
		wg.Wait()
	}
	b.StopTimer()
	st := s.Stats()
	if st.Completed != b.N*intersections*clipsPer || st.Failed != 0 {
		b.Fatalf("memory pressure dropped clips: %+v", st)
	}
	if st.Evictions < 1 || st.Reloads < 1 {
		b.Fatalf("budgeted workers produced no churn: evictions=%d reloads=%d", st.Evictions, st.Reloads)
	}
	b.ReportMetric(st.VirtualThroughput(), "virt-clip/s")
	b.ReportMetric(float64(st.Evictions)/float64(intersections*clipsPer), "evictions/clip")
	b.ReportMetric(float64(st.Reloads)/float64(intersections*clipsPer), "reloads/clip")
	b.ReportMetric(float64(st.CriticalQueueP95.Microseconds()), "crit-p95-µs")
	b.ReportMetric(float64(st.RoutineQueueP95.Microseconds()), "rout-p95-µs")
}

// makeBenchClips builds a small clip set for benchmarks.
func makeBenchClips(b *testing.B, clipLen, n int) []*dataset.Clip {
	b.Helper()
	vp := vision.DefaultVPConfig()
	clips := make([]*dataset.Clip, 0, n)
	for i := 0; i < n; i++ {
		sc := sim.Scenario{
			Weather: sim.Day, Danger: i%2 == 0, Blind: i%4 < 2,
			Seed: int64(600 + i*41),
		}
		seg, err := sc.GenerateN(clipLen)
		if err != nil {
			b.Fatal(err)
		}
		clip, err := dataset.FromSegment(seg, vp)
		if err != nil {
			b.Fatal(err)
		}
		clips = append(clips, clip)
	}
	return clips
}
